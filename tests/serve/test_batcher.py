"""Coalescing, ordering, failure isolation and shutdown of the batcher."""

import threading
import time

import pytest

from repro.serve.batcher import BatcherClosed, BatcherSaturated, MicroBatcher


def submit_all(batcher, jobs):
    """Submit jobs concurrently; returns results in submission order."""
    results = [None] * len(jobs)
    errors = [None] * len(jobs)
    barrier = threading.Barrier(len(jobs))

    def worker(i, job):
        barrier.wait()
        try:
            results[i] = batcher.submit(job)
        except Exception as exc:  # noqa: BLE001 - collected for asserts
            errors[i] = exc

    threads = [
        threading.Thread(target=worker, args=(i, j))
        for i, j in enumerate(jobs)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results, errors


class TestCoalescing:
    def test_concurrent_jobs_coalesce_into_one_cycle(self):
        cycles = []
        batcher = MicroBatcher(
            lambda jobs: cycles.append(list(jobs)) or [j * 2 for j in jobs],
            max_batch_size=16,
            max_wait_ms=200.0,
        )
        try:
            results, errors = submit_all(batcher, [1, 2, 3, 4])
        finally:
            batcher.close()
        assert errors == [None] * 4
        assert results == [2, 4, 6, 8]
        assert len(cycles) == 1
        assert sorted(cycles[0]) == [1, 2, 3, 4]
        assert batcher.batches == 1
        assert batcher.jobs == 4
        assert batcher.max_batch_observed == 4

    def test_max_batch_size_bounds_a_cycle(self):
        cycles = []
        batcher = MicroBatcher(
            lambda jobs: cycles.append(len(jobs)) or list(jobs),
            max_batch_size=2,
            max_wait_ms=200.0,
        )
        try:
            _, errors = submit_all(batcher, list(range(6)))
        finally:
            batcher.close()
        assert errors == [None] * 6
        assert max(cycles) <= 2
        assert sum(cycles) == 6

    def test_lone_request_is_not_held_past_the_window(self):
        batcher = MicroBatcher(lambda jobs: list(jobs), max_wait_ms=5.0)
        try:
            start = time.monotonic()
            assert batcher.submit("x") == "x"
            assert time.monotonic() - start < 2.0
        finally:
            batcher.close()

    def test_zero_wait_means_serial_cycles(self):
        batcher = MicroBatcher(lambda jobs: list(jobs), max_wait_ms=0.0)
        try:
            for i in range(4):
                assert batcher.submit(i) == i
        finally:
            batcher.close()
        assert batcher.batches == 4

    def test_knob_validation(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            MicroBatcher(lambda jobs: jobs, max_batch_size=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            MicroBatcher(lambda jobs: jobs, max_wait_ms=-1.0)
        with pytest.raises(ValueError, match="max_queue"):
            MicroBatcher(lambda jobs: jobs, max_queue=0)


class TestSaturation:
    def test_overflow_submits_are_rejected_not_queued(self):
        # wedge the worker so submitted jobs stay in flight, then push
        # more than max_queue: the overflow must fail fast, not block
        wedged = threading.Event()
        release = threading.Event()

        def run(jobs):
            wedged.set()
            release.wait(timeout=30)
            return list(jobs)

        batcher = MicroBatcher(
            run, max_wait_ms=0.0, max_batch_size=1, max_queue=2
        )
        try:
            outcomes = {}

            def worker(i):
                try:
                    outcomes[i] = ("ok", batcher.submit(i))
                except Exception as exc:  # noqa: BLE001
                    outcomes[i] = ("err", exc)

            first = threading.Thread(target=worker, args=(0,))
            first.start()
            assert wedged.wait(timeout=5)
            second = threading.Thread(target=worker, args=(1,))
            second.start()
            time.sleep(0.05)  # let job 1 land in the queue
            # in-flight count is now at max_queue: these must bounce
            for i in (2, 3, 4):
                worker(i)
            assert all(
                isinstance(outcomes[i][1], BatcherSaturated)
                for i in (2, 3, 4)
            )
            assert batcher.rejected == 3
            release.set()
            first.join(timeout=5)
            second.join(timeout=5)
            assert outcomes[0] == ("ok", 0)
            assert outcomes[1] == ("ok", 1)
        finally:
            release.set()
            batcher.close()

    def test_capacity_frees_up_after_completion(self):
        batcher = MicroBatcher(
            lambda jobs: list(jobs), max_wait_ms=0.0, max_queue=1
        )
        try:
            for i in range(5):
                assert batcher.submit(i) == i
            assert batcher.rejected == 0
        finally:
            batcher.close()


class TestFailures:
    def test_exception_result_fails_only_that_job(self):
        def run(jobs):
            return [
                ValueError(f"bad {j}") if j == "bad" else j for j in jobs
            ]

        batcher = MicroBatcher(run, max_wait_ms=200.0)
        try:
            results, errors = submit_all(batcher, ["ok", "bad", "ok2"])
        finally:
            batcher.close()
        assert results[0] == "ok" and results[2] == "ok2"
        assert isinstance(errors[1], ValueError)

    def test_run_batch_raising_fails_the_cycle(self):
        def run(jobs):
            raise RuntimeError("cycle exploded")

        batcher = MicroBatcher(run, max_wait_ms=200.0)
        try:
            _, errors = submit_all(batcher, [1, 2])
        finally:
            batcher.close()
        assert all(isinstance(e, RuntimeError) for e in errors)

    def test_length_mismatch_is_an_error(self):
        batcher = MicroBatcher(lambda jobs: [], max_wait_ms=0.0)
        try:
            with pytest.raises(RuntimeError, match="results for"):
                batcher.submit("x")
        finally:
            batcher.close()

    def test_worker_survives_a_failed_cycle(self):
        state = {"fail": True}

        def run(jobs):
            if state.pop("fail", False):
                raise RuntimeError("first cycle fails")
            return list(jobs)

        batcher = MicroBatcher(run, max_wait_ms=0.0)
        try:
            with pytest.raises(RuntimeError):
                batcher.submit("a")
            assert batcher.submit("b") == "b"
        finally:
            batcher.close()


class TestShutdown:
    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(lambda jobs: list(jobs))
        batcher.close()
        with pytest.raises(BatcherClosed):
            batcher.submit("x")

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(lambda jobs: list(jobs))
        batcher.close()
        batcher.close()

    def test_close_drains_queued_work(self):
        release = threading.Event()

        def run(jobs):
            release.wait(timeout=5)
            return list(jobs)

        batcher = MicroBatcher(run, max_wait_ms=0.0)
        results, errors = [], []

        def worker():
            try:
                results.append(batcher.submit("job"))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        t = threading.Thread(target=worker)
        t.start()
        time.sleep(0.05)
        release.set()
        batcher.close()
        t.join(timeout=5)
        assert results == ["job"]
        assert errors == []

    def test_wedged_worker_fails_queued_futures(self):
        """If run_batch never returns, close() must not leave later
        submitters blocked forever on futures nobody will resolve."""
        wedged = threading.Event()
        release = threading.Event()

        def run(jobs):
            wedged.set()
            # simulate a hung model pass (released during cleanup so the
            # daemon thread does not outlive the test)
            release.wait(timeout=30)
            return list(jobs)

        batcher = MicroBatcher(run, max_wait_ms=0.0, max_batch_size=1)
        outcomes = {}

        def worker(name):
            try:
                outcomes[name] = ("ok", batcher.submit(name))
            except Exception as exc:  # noqa: BLE001
                outcomes[name] = ("err", exc)

        first = threading.Thread(target=worker, args=("wedged-job",))
        first.start()
        assert wedged.wait(timeout=5)
        # these land in the queue behind the wedged cycle
        queued = [
            threading.Thread(target=worker, args=(f"queued-{i}",))
            for i in range(3)
        ]
        for t in queued:
            t.start()
        time.sleep(0.05)
        batcher.close(timeout=0.2)
        for t in queued:
            t.join(timeout=5)
            assert not t.is_alive(), "queued submitter still blocked"
        for i in range(3):
            kind, value = outcomes[f"queued-{i}"]
            assert kind == "err"
            assert isinstance(value, BatcherClosed)
        release.set()
        first.join(timeout=5)
