"""Shared fixtures: one tiny model and a pair of circuit texts."""

import numpy as np
import pytest

from repro.aig import aiger, bench
from repro.datagen.generators import comparator, ripple_adder
from repro.models import DeepGate
from repro.synth import netlist_to_aig


@pytest.fixture(scope="session")
def model():
    return DeepGate(dim=12, num_iterations=2, rng=np.random.default_rng(0))


@pytest.fixture(scope="session")
def adder_netlist():
    return ripple_adder(3)


@pytest.fixture(scope="session")
def adder_aag(adder_netlist):
    return aiger.dumps(netlist_to_aig(adder_netlist))


@pytest.fixture(scope="session")
def adder_bench(adder_netlist):
    return bench.dumps(adder_netlist)


@pytest.fixture(scope="session")
def comparator_aag():
    return aiger.dumps(netlist_to_aig(comparator(3)))


def rename_bench(text: str, prefix: str = "net_") -> str:
    """The same .bench circuit with every signal renamed."""
    names = set()
    for line in text.splitlines():
        head, _, rest = line.partition("=")
        if rest:
            names.add(head.strip())
        elif "(" in line:
            names.add(line.split("(", 1)[1].rstrip(")").strip())
    renamed = text
    for name in sorted(names, key=len, reverse=True):
        renamed = renamed.replace(name, prefix + name)
    return renamed
