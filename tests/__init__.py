"""Test suite for the DeepGate reproduction (package so relative imports of tests.helpers work)."""
