"""Tests for balance, sweep and the full synthesize pipeline."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.aig import AIGBuilder, GateType, Netlist, lit_negate
from repro.synth import (
    balance,
    has_constant_outputs,
    netlist_to_aig,
    sweep,
    synthesize,
)

from ..helpers import assert_functionally_equal, random_netlist


def chain_and_netlist(width: int) -> Netlist:
    """Deliberately unbalanced AND chain of ``width`` inputs."""
    nl = Netlist("chain")
    nets = [nl.add_input(f"i{k}") for k in range(width)]
    prev = nets[0]
    for k in range(1, width):
        prev = nl.add_gate(f"a{k}", GateType.AND, [prev, nets[k]])
    nl.set_outputs([prev])
    return nl


class TestBalance:
    def test_chain_depth_becomes_logarithmic(self):
        nl = chain_and_netlist(16)
        # build chain AIG *without* tree balancing by direct construction
        b = AIGBuilder(num_pis=16)
        lit = b.pi_lit(0)
        for k in range(1, 16):
            lit = b.add_and(lit, b.pi_lit(k))
        b.add_output(lit)
        unbalanced = b.build()
        assert unbalanced.depth() == 15
        balanced = balance(unbalanced)
        assert balanced.depth() == 4
        assert_functionally_equal(unbalanced, balanced, max_pis=16)

    def test_fanout_boundaries_respected(self):
        """Internal nodes with fanout > 1 must stay shared, not duplicated."""
        b = AIGBuilder(num_pis=3)
        shared = b.add_and(b.pi_lit(0), b.pi_lit(1))
        g1 = b.add_and(shared, b.pi_lit(2))
        g2 = b.add_and(shared, lit_negate(b.pi_lit(2)))
        b.add_output(g1)
        b.add_output(g2)
        before = b.build()
        after = balance(before)
        assert_functionally_equal(before, after)
        assert after.num_ands <= before.num_ands

    def test_random_equivalence(self):
        rng = np.random.default_rng(5)
        for _ in range(10):
            aig = netlist_to_aig(random_netlist(rng, num_inputs=4, num_gates=18))
            assert_functionally_equal(aig, balance(aig))


class TestSweep:
    def test_dead_logic_removed(self):
        b = AIGBuilder(num_pis=2)
        live = b.add_and(b.pi_lit(0), b.pi_lit(1))
        b.add_and(b.pi_lit(0), lit_negate(b.pi_lit(1)))  # dead
        b.add_output(live)
        swept = sweep(b.build())
        assert swept.num_ands == 1
        assert swept.num_pis == 2  # PIs always survive

    def test_idempotent(self):
        rng = np.random.default_rng(11)
        aig = netlist_to_aig(random_netlist(rng, num_inputs=4, num_gates=15))
        once = sweep(aig)
        twice = sweep(once)
        assert once.num_ands == twice.num_ands
        assert_functionally_equal(once, twice)

    def test_constant_output_kept(self):
        b = AIGBuilder(num_pis=1)
        b.add_output(1)
        swept = sweep(b.build())
        assert swept.outputs == [1]


class TestSynthesize:
    def test_never_grows_versus_strash_only(self):
        rng = np.random.default_rng(3)
        for _ in range(8):
            nl = random_netlist(rng, num_inputs=5, num_gates=25)
            raw = netlist_to_aig(nl)
            opt = synthesize(nl)
            assert opt.num_ands <= raw.num_ands
            assert_functionally_equal(nl, opt)

    def test_accepts_aig_input(self):
        rng = np.random.default_rng(9)
        aig = netlist_to_aig(random_netlist(rng))
        opt = synthesize(aig)
        assert_functionally_equal(aig, opt)

    def test_rejects_other_types(self):
        import pytest

        with pytest.raises(TypeError):
            synthesize("not a circuit")

    def test_constant_output_detection(self):
        nl = Netlist()
        nl.add_input("a")
        nl.add_gate("z", GateType.XOR, ["a", "a"])  # constant 0
        nl.set_outputs(["z"])
        aig = synthesize(nl)
        assert has_constant_outputs(aig)

    def test_no_constants_internally_after_synthesis(self):
        rng = np.random.default_rng(21)
        for _ in range(10):
            nl = random_netlist(rng, num_inputs=4, num_gates=20)
            aig = synthesize(nl)
            if not has_constant_outputs(aig):
                # gate graph construction requires a constant-free AIG
                aig.to_gate_graph().validate()

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_hypothesis_pipeline_equivalence(self, seed):
        rng = np.random.default_rng(seed)
        nl = random_netlist(
            rng,
            num_inputs=int(rng.integers(2, 6)),
            num_gates=int(rng.integers(5, 30)),
        )
        assert_functionally_equal(nl, synthesize(nl))

    def test_depth_not_catastrophically_worse(self):
        nl = chain_and_netlist(32)
        opt = synthesize(nl)
        assert opt.depth() <= 6  # log2(32) + slack
