"""Tests for netlist -> AIG lowering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aig import GateType, Netlist
from repro.synth import netlist_to_aig

from ..helpers import assert_functionally_equal, random_netlist


def single_gate_netlist(gate_type: str, arity: int) -> Netlist:
    nl = Netlist(f"single_{gate_type}")
    ins = [nl.add_input(f"i{k}") for k in range(arity)]
    nl.add_gate("g", gate_type, ins)
    nl.set_outputs(["g"])
    return nl


class TestSingleGates:
    """Lowering each gate type must preserve its exact truth table."""

    @pytest.mark.parametrize(
        "gate_type,arity",
        [
            (GateType.AND, 2),
            (GateType.NAND, 2),
            (GateType.OR, 2),
            (GateType.NOR, 2),
            (GateType.XOR, 2),
            (GateType.XNOR, 2),
            (GateType.NOT, 1),
            (GateType.BUF, 1),
            (GateType.MUX, 3),
            (GateType.AND, 5),
            (GateType.OR, 5),
            (GateType.XOR, 5),
            (GateType.NAND, 4),
            (GateType.NOR, 4),
            (GateType.XNOR, 3),
        ],
    )
    def test_gate_lowering(self, gate_type, arity):
        nl = single_gate_netlist(gate_type, arity)
        aig = netlist_to_aig(nl)
        assert aig.num_pis == arity
        assert_functionally_equal(nl, aig)

    def test_constants_become_const_literals(self):
        nl = Netlist()
        nl.add_input("a")
        nl.add_gate("z", GateType.CONST0)
        nl.add_gate("o", GateType.CONST1)
        nl.set_outputs(["z", "o", "a"])
        aig = netlist_to_aig(nl)
        assert aig.outputs[0] == 0
        assert aig.outputs[1] == 1
        assert aig.num_ands == 0

    def test_input_order_preserved(self):
        nl = Netlist()
        for name in ("x", "y", "z"):
            nl.add_input(name)
        nl.add_gate("g", GateType.AND, ["z", "x"])
        nl.set_outputs(["g"])
        aig = netlist_to_aig(nl)
        assert aig.num_pis == 3  # all inputs kept even if y is unused


class TestSharing:
    def test_common_subexpressions_shared(self):
        nl = Netlist()
        nl.add_input("a")
        nl.add_input("b")
        nl.add_gate("g1", GateType.AND, ["a", "b"])
        nl.add_gate("g2", GateType.AND, ["a", "b"])  # same function
        nl.add_gate("o", GateType.OR, ["g1", "g2"])
        nl.set_outputs(["o"])
        aig = netlist_to_aig(nl)
        # OR of two identical signals collapses: o = g1, one AND total
        assert aig.num_ands == 1

    def test_xor_decomposition_size(self):
        nl = single_gate_netlist(GateType.XOR, 2)
        aig = netlist_to_aig(nl)
        assert aig.num_ands == 3  # two product terms + one merge


class TestRandomised:
    def test_random_netlists_equivalent(self):
        rng = np.random.default_rng(123)
        for _ in range(15):
            nl = random_netlist(rng, num_inputs=5, num_gates=20)
            assert_functionally_equal(nl, netlist_to_aig(nl))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_hypothesis_random_netlists(self, seed):
        rng = np.random.default_rng(seed)
        nl = random_netlist(
            rng,
            num_inputs=int(rng.integers(2, 6)),
            num_gates=int(rng.integers(3, 25)),
            num_outputs=int(rng.integers(1, 4)),
        )
        assert_functionally_equal(nl, netlist_to_aig(nl))
