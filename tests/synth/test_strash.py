"""Tests for structural hashing and the StrashBuilder logic ops."""

import numpy as np

from repro.aig import AIGBuilder, CONST0_LIT, CONST1_LIT, lit_negate
from repro.sim import exhaustive_patterns, popcount, simulate_aig
from repro.synth import StrashBuilder, strash

from ..helpers import assert_functionally_equal


def truth(builder: StrashBuilder, lit: int) -> int:
    """4-row truth table (2 PIs) of ``lit`` as an int in [0, 16)."""
    aig = _with_output(builder, lit)
    vals = simulate_aig(aig, exhaustive_patterns(2))
    word = int(vals[lit >> 1, 0]) & 0xF
    return word ^ 0xF if lit & 1 else word


def _with_output(builder: StrashBuilder, lit: int):
    snapshot = StrashBuilder(builder.num_pis)
    snapshot._ands = list(builder._ands)
    snapshot.add_output(lit)
    return snapshot.build()


class TestSimplificationRules:
    def setup_method(self):
        self.b = StrashBuilder(num_pis=2)
        self.a = self.b.pi_lit(0)
        self.c = self.b.pi_lit(1)

    def test_and_idempotent(self):
        assert self.b.add_and(self.a, self.a) == self.a

    def test_and_contradiction(self):
        assert self.b.add_and(self.a, lit_negate(self.a)) == CONST0_LIT

    def test_and_with_const0(self):
        assert self.b.add_and(self.a, CONST0_LIT) == CONST0_LIT

    def test_and_with_const1(self):
        assert self.b.add_and(self.a, CONST1_LIT) == self.a

    def test_commutative_hashing(self):
        g1 = self.b.add_and(self.a, self.c)
        g2 = self.b.add_and(self.c, self.a)
        assert g1 == g2
        assert self.b.num_ands == 1

    def test_one_level_containment(self):
        inner = self.b.add_and(self.a, self.c)
        assert self.b.add_and(self.a, inner) == inner

    def test_one_level_contradiction(self):
        inner = self.b.add_and(self.a, self.c)
        assert self.b.add_and(lit_negate(self.a), inner) == CONST0_LIT


class TestDerivedOps:
    """Each derived op must match its truth table exactly."""

    def setup_method(self):
        self.b = StrashBuilder(num_pis=2)
        self.a = self.b.pi_lit(0)  # truth 0b1010 over patterns 00,01,10,11
        self.c = self.b.pi_lit(1)  # truth 0b1100

    def test_or(self):
        assert truth(self.b, self.b.add_or(self.a, self.c)) == 0b1110

    def test_nand(self):
        assert truth(self.b, self.b.add_nand(self.a, self.c)) == 0b0111

    def test_nor(self):
        assert truth(self.b, self.b.add_nor(self.a, self.c)) == 0b0001

    def test_xor(self):
        assert truth(self.b, self.b.add_xor(self.a, self.c)) == 0b0110

    def test_xnor(self):
        assert truth(self.b, self.b.add_xnor(self.a, self.c)) == 0b1001

    def test_mux(self):
        # sel=a: out = a ? c : !c
        out = self.b.add_mux(self.a, lit_negate(self.c), self.c)
        # pattern (a,c): 00->!c=1, 01->!c? a=0 -> !c=... enumerate:
        # p0 a=0 c=0 -> if_false=!c=1; p1 a=1 c=0 -> if_true=c=0
        # p2 a=0 c=1 -> !c=0;          p3 a=1 c=1 -> c=1
        assert truth(self.b, out) == 0b1001

    def test_and_tree_empty_is_const1(self):
        assert self.b.add_and_tree([]) == CONST1_LIT

    def test_xor_tree_empty_is_const0(self):
        assert self.b.add_xor_tree([]) == CONST0_LIT

    def test_or_tree_many(self):
        b = StrashBuilder(num_pis=6)
        lits = [b.pi_lit(i) for i in range(6)]
        out = b.add_or_tree(lits)
        b.add_output(out)
        aig = b.build()
        vals = simulate_aig(aig, exhaustive_patterns(6))
        ones = popcount(vals[out >> 1 : (out >> 1) + 1])[0]
        if out & 1:
            ones = 64 - ones
        assert ones == 63  # OR of 6 vars is 1 except the all-zero pattern

    def test_level_tracking(self):
        b = StrashBuilder(num_pis=4)
        lits = [b.pi_lit(i) for i in range(4)]
        out = b.add_and_tree(lits)
        assert b.level_of(out) == 2  # balanced, not a depth-3 chain


class TestStrashPass:
    def test_merges_duplicates(self):
        b = AIGBuilder(num_pis=2)
        g1 = b.add_and(b.pi_lit(0), b.pi_lit(1))
        g2 = b.add_and(b.pi_lit(0), b.pi_lit(1))  # duplicate
        b.add_output(b.add_and(g1, g2))
        before = b.build()
        after = strash(before)
        assert after.num_ands < before.num_ands
        assert_functionally_equal(before, after)

    def test_propagates_constants(self):
        b = AIGBuilder(num_pis=1)
        # x & !x = 0 feeding another AND -> everything collapses
        z = b.add_and(b.pi_lit(0), lit_negate(b.pi_lit(0)))
        g = b.add_and(z, b.pi_lit(0))
        b.add_output(lit_negate(g))
        after = strash(b.build())
        assert after.num_ands == 0
        assert after.outputs == [CONST1_LIT]

    def test_random_netlists_preserved(self):
        from ..helpers import random_netlist
        from repro.synth import netlist_to_aig

        rng = np.random.default_rng(7)
        for _ in range(10):
            nl = random_netlist(rng, num_inputs=4, num_gates=15)
            aig = netlist_to_aig(nl)
            assert_functionally_equal(aig, strash(aig))


class TestStructuralHash:
    """structural_hash is the compilation-cache key for repro serve."""

    def _adder_bench(self):
        from repro.aig import bench
        from repro.datagen.generators import ripple_adder

        return bench.dumps(ripple_adder(3))

    def _rename(self, text, prefix="net_"):
        names = set()
        for line in text.splitlines():
            head, _, rest = line.partition("=")
            if rest:
                names.add(head.strip())
            elif "(" in line:
                names.add(line.split("(", 1)[1].rstrip(")").strip())
        for name in sorted(names, key=len, reverse=True):
            text = text.replace(name, prefix + name)
        return text

    def test_rename_invariant(self):
        from repro.aig import bench
        from repro.synth import netlist_to_aig, structural_hash

        text = self._adder_bench()
        a = netlist_to_aig(bench.loads(text))
        b = netlist_to_aig(bench.loads(self._rename(text)))
        assert structural_hash(a) == structural_hash(b)

    def test_distinct_structures_differ(self):
        from repro.datagen.generators import parity, ripple_adder
        from repro.synth import netlist_to_aig, structural_hash

        h1 = structural_hash(netlist_to_aig(ripple_adder(3)))
        h2 = structural_hash(netlist_to_aig(parity(5)))
        assert h1 != h2

    def test_canonicalize_merges_redundancy(self):
        from repro.synth import structural_hash

        def build(duplicated):
            b = AIGBuilder(num_pis=2)
            g1 = b.add_and(b.pi_lit(0), b.pi_lit(1))
            g2 = b.add_and(b.pi_lit(0), b.pi_lit(1)) if duplicated else g1
            b.add_output(b.add_and(g1, g2))
            return b.build()

        lean, fat = build(False), build(True)
        assert structural_hash(lean) == structural_hash(fat)
        assert structural_hash(
            lean, canonicalize=False
        ) != structural_hash(fat, canonicalize=False)

    def test_output_polarity_matters(self):
        from repro.synth import structural_hash

        def build(negate):
            b = AIGBuilder(num_pis=2)
            g = b.add_and(b.pi_lit(0), b.pi_lit(1))
            b.add_output(lit_negate(g) if negate else g)
            return b.build()

        assert structural_hash(build(False)) != structural_hash(build(True))

    def test_hash_is_hex_digest(self):
        from repro.synth import structural_hash

        b = AIGBuilder(num_pis=1)
        b.add_output(b.pi_lit(0))
        h = structural_hash(b.build())
        assert len(h) == 64
        int(h, 16)  # valid hex
