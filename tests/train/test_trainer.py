"""Tests for metrics and the training loop."""

import numpy as np
import pytest

from repro.datagen.generators import parity, ripple_adder
from repro.graphdata import CircuitDataset, from_aig
from repro.models import DeepGate
from repro.synth import synthesize
from repro.train import (
    ErrorAccumulator,
    TrainConfig,
    Trainer,
    average_prediction_error,
    evaluate_model,
)


def tiny_dataset(n=6):
    graphs = []
    for k in range(n):
        nl = ripple_adder(3) if k % 2 else parity(4 + k % 3)
        graphs.append(from_aig(synthesize(nl), num_patterns=512, seed=k))
    return CircuitDataset(graphs)


class TestMetrics:
    def test_average_prediction_error(self):
        err = average_prediction_error(
            np.array([0.0, 1.0]), np.array([0.5, 0.5])
        )
        assert err == pytest.approx(0.5)

    def test_perfect_prediction_zero(self):
        y = np.array([0.2, 0.8, 0.5])
        assert average_prediction_error(y, y) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            average_prediction_error(np.zeros(2), np.zeros(3))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_prediction_error(np.zeros(0), np.zeros(0))

    def test_accumulator_node_weighted(self):
        acc = ErrorAccumulator()
        acc.add(np.zeros(3), np.ones(3))  # err 1.0 over 3 nodes
        acc.add(np.ones(1), np.ones(1))  # err 0.0 over 1 node
        assert acc.value == pytest.approx(0.75)
        assert acc.count == 4

    def test_accumulator_empty_rejected(self):
        with pytest.raises(ValueError):
            ErrorAccumulator().value


class TestTrainer:
    def test_loss_decreases(self):
        ds = tiny_dataset()
        model = DeepGate(dim=12, num_iterations=2, rng=np.random.default_rng(0))
        trainer = Trainer(model, TrainConfig(epochs=8, batch_size=3, lr=3e-3))
        history = trainer.fit(ds)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_eval_history_populated(self):
        train = tiny_dataset(4)
        test = tiny_dataset(2)
        model = DeepGate(dim=8, num_iterations=1, rng=np.random.default_rng(1))
        trainer = Trainer(model, TrainConfig(epochs=2, batch_size=2, lr=1e-3))
        history = trainer.fit(train, test)
        assert len(history.eval_error) == 2
        assert history.best_eval_error <= history.eval_error[0]

    def test_callback_invoked(self):
        ds = tiny_dataset(2)
        calls = []
        model = DeepGate(dim=4, num_iterations=1, rng=np.random.default_rng(2))
        trainer = Trainer(model, TrainConfig(epochs=3, batch_size=2, lr=1e-3))
        trainer.fit(ds, callback=lambda e, l, v: calls.append((e, l, v)))
        assert [c[0] for c in calls] == [0, 1, 2]

    def test_evaluate_with_custom_iterations(self):
        ds = tiny_dataset(3)
        model = DeepGate(dim=8, num_iterations=4, rng=np.random.default_rng(3))
        trainer = Trainer(model, TrainConfig(epochs=1, batch_size=2, lr=1e-3))
        trainer.fit(ds)
        e1 = trainer.evaluate(ds, num_iterations=1)
        e4 = trainer.evaluate(ds, num_iterations=4)
        assert e1 != e4

    def test_evaluate_model_matches_metric(self):
        ds = tiny_dataset(3)
        model = DeepGate(dim=6, num_iterations=1, rng=np.random.default_rng(4))
        batches = ds.prepared_batches(batch_size=3)
        err = evaluate_model(model, batches)
        # recompute manually
        from repro.nn import no_grad

        total, count = 0.0, 0
        with no_grad():
            for b in batches:
                p = model(b).numpy()
                total += np.abs(p - b.labels).sum()
                count += len(b.labels)
        assert err == pytest.approx(total / count, rel=1e-6)

    def test_grad_clip_disabled(self):
        ds = tiny_dataset(2)
        model = DeepGate(dim=4, num_iterations=1, rng=np.random.default_rng(5))
        trainer = Trainer(model, TrainConfig(epochs=1, batch_size=2, grad_clip=0.0))
        trainer.fit(ds)  # must not raise
