"""Tests for metrics and the training loop."""

import numpy as np
import pytest

from repro.models import DeepGate
from repro.train import (
    ErrorAccumulator,
    TrainConfig,
    Trainer,
    average_prediction_error,
    evaluate_model,
)

from ..helpers import tiny_circuit_dataset


def tiny_dataset(n=6):
    return tiny_circuit_dataset(n, num_patterns=512)


class TestMetrics:
    def test_average_prediction_error(self):
        err = average_prediction_error(
            np.array([0.0, 1.0]), np.array([0.5, 0.5])
        )
        assert err == pytest.approx(0.5)

    def test_perfect_prediction_zero(self):
        y = np.array([0.2, 0.8, 0.5])
        assert average_prediction_error(y, y) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            average_prediction_error(np.zeros(2), np.zeros(3))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_prediction_error(np.zeros(0), np.zeros(0))

    def test_accumulator_node_weighted(self):
        acc = ErrorAccumulator()
        acc.add(np.zeros(3), np.ones(3))  # err 1.0 over 3 nodes
        acc.add(np.ones(1), np.ones(1))  # err 0.0 over 1 node
        assert acc.value == pytest.approx(0.75)
        assert acc.count == 4

    def test_accumulator_empty_rejected(self):
        with pytest.raises(ValueError):
            ErrorAccumulator().value


class TestTrainHistory:
    def test_empty_history_returns_none(self):
        from repro.train import TrainHistory

        history = TrainHistory()
        assert history.final_train_loss is None
        assert history.best_eval_error is None

    def test_populated_history(self):
        from repro.train import TrainHistory

        history = TrainHistory(train_loss=[0.5, 0.2], eval_error=[0.4, 0.3])
        assert history.final_train_loss == 0.2
        assert history.best_eval_error == 0.3

    def test_dict_roundtrip(self):
        from repro.train import TrainHistory

        history = TrainHistory(train_loss=[0.5], eval_error=[0.4])
        assert TrainHistory.from_dict(history.to_dict()) == history


class TestTrainer:
    def test_loss_decreases(self):
        ds = tiny_dataset()
        model = DeepGate(dim=12, num_iterations=2, rng=np.random.default_rng(0))
        trainer = Trainer(model, TrainConfig(epochs=8, batch_size=3, lr=3e-3))
        history = trainer.fit(ds)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_eval_history_populated(self):
        train = tiny_dataset(4)
        test = tiny_dataset(2)
        model = DeepGate(dim=8, num_iterations=1, rng=np.random.default_rng(1))
        trainer = Trainer(model, TrainConfig(epochs=2, batch_size=2, lr=1e-3))
        history = trainer.fit(train, test)
        assert len(history.eval_error) == 2
        assert history.best_eval_error <= history.eval_error[0]

    def test_callback_invoked(self):
        ds = tiny_dataset(2)
        calls = []
        model = DeepGate(dim=4, num_iterations=1, rng=np.random.default_rng(2))
        trainer = Trainer(model, TrainConfig(epochs=3, batch_size=2, lr=1e-3))
        trainer.fit(ds, callback=lambda ep, loss, ev: calls.append((ep, loss, ev)))
        assert [c[0] for c in calls] == [0, 1, 2]

    def test_evaluate_with_custom_iterations(self):
        ds = tiny_dataset(3)
        model = DeepGate(dim=8, num_iterations=4, rng=np.random.default_rng(3))
        trainer = Trainer(model, TrainConfig(epochs=1, batch_size=2, lr=1e-3))
        trainer.fit(ds)
        e1 = trainer.evaluate(ds, num_iterations=1)
        e4 = trainer.evaluate(ds, num_iterations=4)
        assert e1 != e4

    def test_evaluate_model_matches_metric(self):
        ds = tiny_dataset(3)
        model = DeepGate(dim=6, num_iterations=1, rng=np.random.default_rng(4))
        batches = ds.prepared_batches(batch_size=3)
        err = evaluate_model(model, batches)
        # recompute manually
        from repro.nn import no_grad

        total, count = 0.0, 0
        with no_grad():
            for b in batches:
                p = model(b).numpy()
                total += np.abs(p - b.labels).sum()
                count += len(b.labels)
        assert err == pytest.approx(total / count, rel=1e-6)

    def test_grad_clip_disabled(self):
        ds = tiny_dataset(2)
        model = DeepGate(dim=4, num_iterations=1, rng=np.random.default_rng(5))
        trainer = Trainer(model, TrainConfig(epochs=1, batch_size=2, grad_clip=0.0))
        trainer.fit(ds)  # must not raise

    def test_fit_is_deterministic_given_seed(self):
        ds = tiny_dataset(4)

        def train_once():
            model = DeepGate(dim=6, num_iterations=1, rng=np.random.default_rng(7))
            t = Trainer(model, TrainConfig(epochs=3, batch_size=2, lr=2e-3, seed=3))
            return t.fit(ds).train_loss

        assert train_once() == train_once()

    def test_epochs_see_different_batch_orders(self):
        """The per-epoch reshuffle must actually vary the batch order."""
        ds = tiny_dataset(6)
        orders = []
        model = DeepGate(dim=4, num_iterations=1, rng=np.random.default_rng(8))
        trainer = Trainer(model, TrainConfig(epochs=3, batch_size=2, lr=1e-3))

        original = trainer._run_epoch

        def spy(batches):
            batches = list(batches)
            orders.append([b.num_nodes for b in batches])
            return original(iter(batches))

        trainer._run_epoch = spy
        trainer.fit(ds)
        assert len(orders) == 3
        assert any(o != orders[0] for o in orders[1:])

    def test_shuffle_disabled_keeps_order(self):
        ds = tiny_dataset(6)
        orders = []
        model = DeepGate(dim=4, num_iterations=1, rng=np.random.default_rng(9))
        trainer = Trainer(
            model, TrainConfig(epochs=2, batch_size=2, lr=1e-3, shuffle=False)
        )
        original = trainer._run_epoch

        def spy(batches):
            batches = list(batches)
            orders.append([b.num_nodes for b in batches])
            return original(iter(batches))

        trainer._run_epoch = spy
        trainer.fit(ds)
        assert orders[0] == orders[1]

    def test_fit_from_sharded_dataset(self, tmp_path):
        from repro.graphdata import ShardedCircuitDataset

        from ..helpers import build_tiny_shards

        build_tiny_shards(tmp_path / "ds", suites=(("EPFL", 3),), seed=5)
        sharded = ShardedCircuitDataset(tmp_path / "ds")
        model = DeepGate(dim=4, num_iterations=1, rng=np.random.default_rng(6))
        history = Trainer(model, TrainConfig(epochs=2, batch_size=2, lr=1e-3)).fit(
            sharded
        )
        assert len(history.train_loss) == 2
