"""Checkpoint round-trips, resume determinism, callbacks, streamed parity."""

import numpy as np
import pytest

from repro.graphdata import ShardedCircuitDataset
from repro.models import DeepGate
from repro.nn.serialization import load_checkpoint, save_checkpoint
from repro.train import (
    Checkpoint,
    EarlyStopping,
    LRSchedule,
    TrainConfig,
    Trainer,
    cosine_schedule,
    step_decay,
)

from ..helpers import build_tiny_shards, tiny_circuit_dataset


def tiny_dataset(n=6):
    return tiny_circuit_dataset(n, num_patterns=512)


def make_model(seed=0):
    return DeepGate(dim=10, num_iterations=2, rng=np.random.default_rng(seed))


def assert_same_state(a, b):
    sa, sb = a.state_dict(), b.state_dict()
    assert sorted(sa) == sorted(sb)
    for key in sa:
        assert np.array_equal(sa[key], sb[key]), key


class TestCheckpointFile:
    def test_arrays_and_meta_roundtrip(self, tmp_path):
        path = tmp_path / "ck.npz"
        arrays = {"w": np.arange(6.0).reshape(2, 3)}
        save_checkpoint(path, arrays, meta={"epoch": 4, "note": "hi"})
        back, meta = load_checkpoint(path)
        assert meta == {"epoch": 4, "note": "hi"}
        assert np.array_equal(back["w"], arrays["w"])

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            save_checkpoint(
                tmp_path / "x.npz", {"__checkpoint_meta__": np.zeros(1)}
            )

    def test_non_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, w=np.zeros(2))
        with pytest.raises(ValueError, match="not a checkpoint"):
            load_checkpoint(path)

    def test_overwrite_is_atomic_replace(self, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, {"w": np.zeros(2)}, meta={"epoch": 1})
        save_checkpoint(path, {"w": np.ones(2)}, meta={"epoch": 2})
        arrays, meta = load_checkpoint(path)
        assert meta["epoch"] == 2
        assert np.array_equal(arrays["w"], np.ones(2))
        assert list(tmp_path.iterdir()) == [path]  # no temp litter


class TestCorruptArchive:
    """Unreadable files surface as CheckpointError naming the path."""

    def corrupt(self, tmp_path, payload=b"this is not a zip archive"):
        path = tmp_path / "bad.npz"
        path.write_bytes(payload)
        return path

    def test_garbage_bytes_load_checkpoint(self, tmp_path):
        from repro.nn.serialization import CheckpointError

        path = self.corrupt(tmp_path)
        with pytest.raises(CheckpointError, match=str(path)):
            load_checkpoint(path)

    def test_garbage_bytes_load_model_checkpoint(self, tmp_path):
        from repro.nn.serialization import (
            CheckpointError,
            load_model_checkpoint,
        )

        path = self.corrupt(tmp_path)
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            load_model_checkpoint(path)

    def test_garbage_bytes_load_module(self, tmp_path):
        from repro.nn.serialization import CheckpointError, load_module

        path = self.corrupt(tmp_path)
        with pytest.raises(CheckpointError, match=str(path)):
            load_module(make_model(), path)

    def test_truncated_checkpoint_rejected(self, tmp_path):
        from repro.nn.serialization import CheckpointError

        path = tmp_path / "ck.npz"
        save_checkpoint(path, {"w": np.zeros(8)}, meta={"epoch": 1})
        whole = path.read_bytes()
        path.write_bytes(whole[: len(whole) // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "never-written.npz")

    def test_save_module_writes_exact_path(self, tmp_path):
        # np.savez silently appends '.npz' when handed a suffix-less
        # *path*; the atomic save must not fall into that trap
        from repro.nn.serialization import load_module, save_module

        path = tmp_path / "weights"  # no .npz suffix on purpose
        model = make_model(seed=3)
        save_module(model, path)
        assert path.is_file()
        assert list(tmp_path.iterdir()) == [path]  # no temp litter
        other = make_model(seed=4)
        load_module(other, path)
        assert_same_state(model, other)


class TestTrainerCheckpoint:
    def test_save_load_roundtrip_bitwise(self, tmp_path):
        ds = tiny_dataset()
        trainer = Trainer(make_model(), TrainConfig(epochs=2, batch_size=2, lr=3e-3))
        trainer.fit(ds)
        path = tmp_path / "ck.npz"
        trainer.save_checkpoint(path, epoch=1)

        restored = Trainer(make_model(seed=9), TrainConfig(epochs=2, batch_size=2, lr=3e-3))
        start = restored.load_checkpoint(path)
        assert start == 2
        assert_same_state(trainer.model, restored.model)
        assert restored.history.train_loss == trainer.history.train_loss
        assert restored.optimizer._step == trainer.optimizer._step

    def test_resume_reproduces_uninterrupted_run(self, tmp_path):
        """Kill after epoch N, resume: identical loss history and weights."""
        ds = tiny_dataset()
        cfg = dict(batch_size=2, lr=3e-3)

        full = Trainer(make_model(), TrainConfig(epochs=6, **cfg))
        full_history = full.fit(ds)

        half = Trainer(make_model(), TrainConfig(epochs=3, **cfg))
        path = tmp_path / "ck.npz"
        half.fit(ds, callbacks=[Checkpoint(path)])

        resumed = Trainer(make_model(seed=5), TrainConfig(epochs=6, **cfg))
        resumed_history = resumed.fit(ds, resume_from=path)

        assert resumed_history.train_loss == full_history.train_loss
        assert_same_state(full.model, resumed.model)

    def test_model_class_mismatch_rejected(self, tmp_path):
        ds = tiny_dataset(2)
        trainer = Trainer(make_model(), TrainConfig(epochs=1, batch_size=2))
        trainer.fit(ds)
        path = tmp_path / "ck.npz"
        trainer.save_checkpoint(path, epoch=0)

        from repro.models.baselines import GCN

        other = GCN(3, 8, 2, "conv_sum", np.random.default_rng(0))
        with pytest.raises(ValueError, match="was written for"):
            Trainer(other).load_checkpoint(path)

    def test_mismatched_config_rejected_on_resume(self, tmp_path):
        ds = tiny_dataset(2)
        trainer = Trainer(make_model(), TrainConfig(epochs=1, batch_size=2, seed=3))
        trainer.fit(ds)
        path = tmp_path / "ck.npz"
        trainer.save_checkpoint(path, epoch=0)

        other = Trainer(make_model(), TrainConfig(epochs=4, batch_size=4, seed=0))
        with pytest.raises(ValueError, match="different train config"):
            other.load_checkpoint(path)

        # growing the epoch budget alone is a legitimate resume
        extended = Trainer(make_model(), TrainConfig(epochs=9, batch_size=2, seed=3))
        assert extended.load_checkpoint(path) == 1

    def test_checkpoint_every_and_final(self, tmp_path):
        ds = tiny_dataset(2)
        path = tmp_path / "ck.npz"
        trainer = Trainer(make_model(), TrainConfig(epochs=5, batch_size=2))
        trainer.fit(ds, callbacks=[Checkpoint(path, every=2)])
        _, meta = load_checkpoint(path)
        # 5 epochs, every=2: saved after epochs 2 and 4, then the final
        # partial period is flushed by on_fit_end
        assert meta["next_epoch"] == 5


class TestCallbacks:
    def test_early_stopping_stops(self):
        ds = tiny_dataset(4)
        trainer = Trainer(
            make_model(), TrainConfig(epochs=30, batch_size=2, lr=1e-3)
        )
        es = EarlyStopping(patience=2, min_delta=1.0)  # nothing improves by 1.0
        history = trainer.fit(ds, callbacks=[es])
        assert len(history.train_loss) < 30
        assert es.stopped_epoch is not None

    def test_early_stopping_consistent_across_resume(self, tmp_path):
        """A resumed run must stop at the same epoch as an uninterrupted one."""
        ds = tiny_dataset(4)
        cfg = dict(batch_size=2, lr=1e-3)

        full = Trainer(make_model(), TrainConfig(epochs=30, **cfg))
        full_history = full.fit(
            ds, callbacks=[EarlyStopping(patience=2, min_delta=1.0)]
        )

        # interrupt after epoch 1, resume with the same early stopping
        half = Trainer(make_model(), TrainConfig(epochs=1, **cfg))
        path = tmp_path / "ck.npz"
        half.fit(ds, callbacks=[Checkpoint(path)])
        resumed = Trainer(make_model(), TrainConfig(epochs=30, **cfg))
        resumed_history = resumed.fit(
            ds,
            callbacks=[EarlyStopping(patience=2, min_delta=1.0)],
            resume_from=path,
        )

        assert resumed_history.train_loss == full_history.train_loss

    def test_lr_schedule_applied(self):
        ds = tiny_dataset(2)
        seen = []

        class Spy(LRSchedule):
            def on_epoch_start(self, trainer, epoch):
                super().on_epoch_start(trainer, epoch)
                seen.append(trainer.optimizer.lr)

        trainer = Trainer(
            make_model(), TrainConfig(epochs=4, batch_size=2, lr=1e-2)
        )
        trainer.fit(ds, callbacks=[Spy(step_decay(2, gamma=0.1))])
        assert seen == pytest.approx([1e-2, 1e-2, 1e-3, 1e-3])

    def test_cosine_schedule_endpoints(self):
        fn = cosine_schedule(total_epochs=10, min_lr=1e-5)
        assert fn(0, 1e-3) == pytest.approx(1e-3)
        assert fn(10, 1e-3) == pytest.approx(1e-5)

    def test_legacy_callback_still_works(self):
        ds = tiny_dataset(2)
        calls = []
        trainer = Trainer(make_model(), TrainConfig(epochs=3, batch_size=2))
        trainer.fit(ds, callback=lambda ep, loss, ev: calls.append(ep))
        assert calls == [0, 1, 2]


class TestStreamedShardTraining:
    @pytest.fixture(scope="class")
    def shard_dir(self, tmp_path_factory):
        return build_tiny_shards(
            tmp_path_factory.mktemp("train-shards") / "tiny",
            suites=(("EPFL", 4),),
            seed=7,
        )

    def test_streamed_matches_materialized(self, shard_dir):
        """Training from shards == training from the same data in memory."""
        sharded = ShardedCircuitDataset(shard_dir)
        in_memory = sharded.materialize()
        cfg = TrainConfig(epochs=3, batch_size=2, lr=2e-3, shuffle=False)

        t_stream = Trainer(make_model(), cfg)
        h_stream = t_stream.fit(sharded)
        t_mem = Trainer(make_model(), cfg)
        h_mem = t_mem.fit(in_memory)

        assert h_stream.train_loss == h_mem.train_loss
        assert_same_state(t_stream.model, t_mem.model)

    def test_streamed_shuffled_training_runs(self, shard_dir):
        sharded = ShardedCircuitDataset(shard_dir)
        cfg = TrainConfig(epochs=3, batch_size=2, lr=2e-3)
        history = Trainer(make_model(), cfg).fit(sharded)
        assert len(history.train_loss) == 3


class TestModelCheckpoint:
    """Self-describing checkpoints (save/load_model_checkpoint)."""

    def test_roundtrip_rebuilds_identical_model(self, tmp_path):
        from repro.nn.serialization import (
            load_model_checkpoint,
            save_model_checkpoint,
        )

        model = make_model(seed=3)
        path = tmp_path / "model.npz"
        save_model_checkpoint(model, path, meta={"note": "hi"})
        back, meta = load_model_checkpoint(path)
        assert type(back) is type(model)
        assert_same_state(model, back)
        assert meta["note"] == "hi"
        assert meta["model_config"] == model.config()

    def test_module_without_config_rejected(self, tmp_path):
        from repro.nn.modules import Linear
        from repro.nn.serialization import (
            CheckpointError,
            save_model_checkpoint,
        )

        lin = Linear(2, 3, rng=np.random.default_rng(0))
        with pytest.raises(CheckpointError, match="config"):
            save_model_checkpoint(lin, tmp_path / "x.npz")

    def test_plain_checkpoint_rejected_with_hint(self, tmp_path):
        from repro.nn.serialization import (
            CheckpointError,
            load_model_checkpoint,
        )

        path = tmp_path / "plain.npz"
        save_checkpoint(path, {"w": np.zeros(2)}, meta={})
        with pytest.raises(CheckpointError, match="model_config"):
            load_model_checkpoint(path)

    def test_wrong_architecture_names_the_mismatch(self, tmp_path):
        from repro.nn.serialization import (
            CheckpointStateError,
            load_model_checkpoint,
            save_model_checkpoint,
        )

        wide = DeepGate(
            dim=12, num_iterations=2, rng=np.random.default_rng(0)
        )
        path = tmp_path / "model.npz"
        save_model_checkpoint(wide, path)
        # lie about the architecture: claim dim=10 over dim=12 arrays
        from repro.nn.serialization import load_checkpoint

        arrays, meta = load_checkpoint(path)
        meta["model_config"]["dim"] = 10
        save_checkpoint(path, arrays, meta)
        with pytest.raises(CheckpointStateError, match="shape mismatch"):
            load_model_checkpoint(path)

    def test_trainer_checkpoint_is_loadable_standalone(self, tmp_path):
        """Trainer checkpoints carry model_config for repro serve."""
        from repro.nn.serialization import load_model_checkpoint

        trainer = Trainer(
            make_model(seed=5), TrainConfig(epochs=1, batch_size=2)
        )
        trainer.fit(tiny_dataset(4))
        path = tmp_path / "trainer.npz"
        trainer.save_checkpoint(path, epoch=0)
        back, meta = load_model_checkpoint(path)
        assert_same_state(trainer.model, back)
        assert meta["model_config"] == trainer.model.config()


class TestValidateStateDict:
    def test_missing_and_unexpected_keys_named(self):
        from repro.nn.serialization import (
            CheckpointStateError,
            validate_state_dict,
        )

        model = make_model()
        state = model.state_dict()
        first = sorted(state)[0]
        state["bogus_key"] = np.zeros(1)
        del state[first]
        with pytest.raises(CheckpointStateError) as info:
            validate_state_dict(model, state, source="test-ck")
        msg = str(info.value)
        assert "missing keys" in msg and first in msg
        assert "unexpected keys" in msg and "bogus_key" in msg
        assert "test-ck" in msg

    def test_shape_mismatch_reports_both_shapes(self):
        from repro.nn.serialization import (
            CheckpointStateError,
            validate_state_dict,
        )

        model = make_model()
        state = model.state_dict()
        key = sorted(state)[0]
        state[key] = np.zeros(np.asarray(state[key]).shape + (1,))
        with pytest.raises(CheckpointStateError, match="shape mismatch"):
            validate_state_dict(model, state)

    def test_matching_state_passes(self):
        from repro.nn.serialization import validate_state_dict

        model = make_model()
        validate_state_dict(model, model.state_dict())
