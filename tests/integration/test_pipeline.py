"""Cross-module integration tests: the full paper pipeline end to end."""

import numpy as np
import pytest

from repro.aig import aiger, bench, verilog
from repro.datagen import build_suite_dataset, generators as gen
from repro.datagen.normalize import normalize_to_library, variegate
from repro.graphdata import from_aig, prepare
from repro.models import DeepGate, FineTuner
from repro.nn import load_module, no_grad, save_module
from repro.sat import check_equivalence
from repro.synth import has_constant_outputs, strip_constant_outputs, synthesize
from repro.testability import compute_scoap, run_fault_simulation
from repro.train import TrainConfig, Trainer, evaluate_model


class TestDataPipeline:
    def test_netlist_to_labelled_graph(self):
        """generator -> synthesis -> gate graph -> labels -> batch."""
        netlist = gen.alu(3)
        aig = synthesize(netlist)
        if has_constant_outputs(aig):
            aig = strip_constant_outputs(aig)
        graph = from_aig(aig, num_patterns=2048, seed=0)
        graph.validate()
        batch = prepare([graph])
        assert batch.num_nodes == graph.num_nodes
        fwd = batch.forward_schedule(include_skip=True)
        assert sum(len(g.src) for g in fwd) == graph.num_edges

    def test_format_conversion_chain(self, tmp_path):
        """bench -> netlist -> verilog -> netlist -> AIG -> aiger -> AIG,
        equivalence preserved at every step."""
        original = gen.comparator(4)
        bench_path = tmp_path / "c.bench"
        bench.dump(original, bench_path)
        reloaded = bench.load(bench_path)
        v_path = tmp_path / "c.v"
        verilog.dump(normalize_to_library(reloaded), v_path)
        from_verilog = verilog.load(v_path)
        aig = synthesize(from_verilog)
        aag_path = tmp_path / "c.aag"
        aiger.dump(aig, aag_path)
        final = aiger.load(aag_path)
        assert check_equivalence(synthesize(original), final).equivalent

    def test_variegation_collapses_under_synthesis(self):
        """Different technology mappings synthesise to similar AIG sizes."""
        rng = np.random.default_rng(0)
        base = normalize_to_library(gen.ripple_adder(6))
        sizes = []
        for _ in range(3):
            var = variegate(base, rng)
            aig = synthesize(var)
            sizes.append(aig.num_ands)
            assert check_equivalence(synthesize(base), aig).equivalent
        # unified representation: variant sizes within 25% of each other
        assert max(sizes) <= 1.25 * min(sizes)


class TestTrainEvaluateCycle:
    def test_train_save_load_evaluate(self, tmp_path):
        ds = build_suite_dataset("IWLS", 5, seed=2, num_patterns=2048)
        train, test = ds.split(0.8, seed=0)
        model = DeepGate(dim=12, num_iterations=2, rng=np.random.default_rng(0))
        trainer = Trainer(model, TrainConfig(epochs=4, batch_size=2, lr=2e-3))
        trainer.fit(train)
        before = trainer.evaluate(test)

        path = tmp_path / "model.npz"
        save_module(model, path)
        clone = DeepGate(dim=12, num_iterations=2, rng=np.random.default_rng(9))
        load_module(clone, path)
        after = evaluate_model(clone, test.prepared_batches(2))
        assert after == pytest.approx(before, abs=1e-6)

    def test_learned_beats_untrained(self):
        ds = build_suite_dataset("EPFL", 6, seed=4, num_patterns=4096)
        train, test = ds.split(0.7, seed=0)
        trained = DeepGate(dim=16, num_iterations=3, rng=np.random.default_rng(0))
        Trainer(trained, TrainConfig(epochs=15, batch_size=2, lr=2e-3)).fit(train)
        untrained = DeepGate(dim=16, num_iterations=3, rng=np.random.default_rng(0))
        batches = test.prepared_batches(2)
        assert evaluate_model(trained, batches) < evaluate_model(
            untrained, batches
        )

    def test_predictions_approximate_simulation(self):
        """Trained model agrees with an independent simulation run."""
        ds = build_suite_dataset("OpenCores", 5, seed=6, num_patterns=4096)
        train, _ = ds.split(0.8, seed=0)
        model = DeepGate(dim=16, num_iterations=3, rng=np.random.default_rng(1))
        Trainer(model, TrainConfig(epochs=15, batch_size=2, lr=2e-3)).fit(train)
        graph = train[0]
        batch = prepare([graph])
        with no_grad():
            pred = model(batch).numpy()
        # fresh labels with a different seed: model error close to its
        # training-label error (simulation noise is tiny at 4096 patterns)
        assert np.abs(pred - graph.labels).mean() < 0.15


class TestDownstreamIntegration:
    def test_embeddings_feed_scoap_style_head(self):
        ds = build_suite_dataset("ITC99", 4, seed=8, num_patterns=1024)
        backbone = DeepGate(dim=12, num_iterations=2, rng=np.random.default_rng(0))
        batches = [prepare([g]) for g in ds]
        # target: normalised SCOAP testability
        targets = []
        from repro.aig.graph import GateGraph

        for g in ds:
            gate_graph = GateGraph(
                node_type=g.node_type.astype(np.int8),
                edges=g.edges,
                outputs=np.nonzero(
                    ~np.isin(np.arange(g.num_nodes), g.edges[:, 0])
                )[0],
            )
            score = compute_scoap(gate_graph).testability().astype(np.float64)
            score = np.minimum(score, 100.0) / 100.0
            targets.append(score)
        tuner = FineTuner(backbone, lr=5e-3)
        history = tuner.fit(batches, targets, epochs=40)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_fault_simulation_on_synthesised_design(self):
        aig = synthesize(gen.crc(6))
        if has_constant_outputs(aig):
            aig = strip_constant_outputs(aig)
        graph = aig.to_gate_graph()
        report = run_fault_simulation(graph, num_patterns=2048, seed=0)
        assert report.coverage > 0.5
        # CRC logic is XOR-dominated: most faults are easy to randomly detect
        assert report.detection_probability().mean() > 0.1
