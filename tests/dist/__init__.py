"""Tests for the fault-tolerant distributed execution layer."""
