"""DistConfig knobs: validation, backoff curve, env/override layering."""

import pytest

from repro.dist.config import ENV_KNOBS, DistConfig


class TestValidation:
    def test_defaults_are_valid(self):
        DistConfig()

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"lease_ttl": 0}, "lease_ttl"),
            ({"lease_ttl": -1.0}, "lease_ttl"),
            ({"heartbeat_interval": 0}, "heartbeat_interval"),
            ({"lease_ttl": 1.0, "heartbeat_interval": 2.0},
             "heartbeat_interval"),
            ({"max_attempts": 0}, "max_attempts"),
            ({"backoff_base": -0.1}, "backoff"),
            ({"poll_interval": 0}, "poll_interval"),
        ],
    )
    def test_bad_knobs_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            DistConfig(**kwargs)


class TestBackoff:
    def test_exponential_curve_with_cap(self):
        cfg = DistConfig(backoff_base=0.5, backoff_cap=3.0)
        assert cfg.backoff_delay(1) == 0.5
        assert cfg.backoff_delay(2) == 1.0
        assert cfg.backoff_delay(3) == 2.0
        assert cfg.backoff_delay(4) == 3.0  # capped
        assert cfg.backoff_delay(10) == 3.0

    def test_nonpositive_attempt_is_free(self):
        assert DistConfig().backoff_delay(0) == 0.0


class TestFromEnv:
    def test_empty_env_gives_defaults(self):
        assert DistConfig.from_env({}) == DistConfig()

    def test_env_knobs_apply(self):
        cfg = DistConfig.from_env(
            {
                "REPRO_LEASE_TTL": "30",
                "REPRO_HEARTBEAT_INTERVAL": "5",
                "REPRO_MAX_ATTEMPTS": "7",
            }
        )
        assert cfg.lease_ttl == 30.0
        assert cfg.heartbeat_interval == 5.0
        assert cfg.max_attempts == 7

    def test_overrides_beat_env(self):
        cfg = DistConfig.from_env(
            {"REPRO_LEASE_TTL": "30"}, lease_ttl=45.0
        )
        assert cfg.lease_ttl == 45.0

    def test_none_overrides_are_ignored(self):
        cfg = DistConfig.from_env({}, lease_ttl=None, max_attempts=None)
        assert cfg == DistConfig()

    def test_bad_env_value_names_the_variable(self):
        with pytest.raises(ValueError, match="REPRO_LEASE_TTL"):
            DistConfig.from_env({"REPRO_LEASE_TTL": "soon"})
        with pytest.raises(ValueError, match="REPRO_MAX_ATTEMPTS"):
            DistConfig.from_env({"REPRO_MAX_ATTEMPTS": "2.5"})

    def test_every_knob_has_a_config_field(self):
        fields = set(DistConfig.__dataclass_fields__)
        assert set(ENV_KNOBS.values()) <= fields
