"""Chaos suite: every planned fault, and a real SIGKILL, must leave the
distributed results byte-identical to a serial run."""

import time

import pytest

from repro.datagen.pipeline import build_shards
from repro.dist.config import DistConfig
from repro.dist.dispatcher import (
    build_shards_distributed,
    execute_distributed,
)
from repro.dist.faults import FAULT_KINDS
from repro.dist.leases import LeaseStore
from repro.dist.work import ExperimentWorkSource
from repro.dist.worker import run_worker
from repro.runtime import execute_parallel
from repro.runtime import registry as registry_module
from repro.runtime.parallel import _pool_context

from ..helpers import (
    GridSpec,
    count_unit_executions,
    register_grid_experiment,
    tiny_pipeline_config,
)

# TTLs short enough that lease expiry (the recovery path every crash
# fault exercises) costs seconds, not the production default
CHAOS = DistConfig(
    lease_ttl=1.5,
    heartbeat_interval=0.3,
    max_attempts=3,
    backoff_base=0.1,
    backoff_cap=0.5,
    poll_interval=0.05,
)


@pytest.fixture
def grid(tmp_path):
    log_dir = tmp_path / "log"
    log_dir.mkdir()
    name = register_grid_experiment("fake-grid", log_dir=log_dir)
    try:
        yield name, log_dir
    finally:
        registry_module.unregister(name)


def result_bytes(record):
    return (record.out_dir / "result.json").read_bytes()


@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_fault_leaves_results_byte_identical(
    tmp_path, grid, monkeypatch, kind
):
    name, _ = grid
    serial = execute_parallel(
        name, GridSpec(), runs_dir=tmp_path / "serial", workers=1
    )
    monkeypatch.setenv("REPRO_FAULT_PLAN", f"{kind}@beta")
    dist = execute_distributed(
        name,
        GridSpec(),
        runs_dir=tmp_path / "dist",
        workers=2,
        cfg=CHAOS,
    )
    assert result_bytes(serial) == result_bytes(dist)
    assert dist.result["rows"] == serial.result["rows"]


def _worker_main(source, cfg):
    run_worker(source, cfg)


def test_sigkilled_worker_is_reclaimed_without_operator_action(tmp_path):
    # a standalone worker joins the run, gets kill -9'd mid-unit, and
    # the dispatcher fleet still finishes: the orphaned lease expires
    # and is reclaimed, nobody intervenes
    log_dir = tmp_path / "log"
    log_dir.mkdir()
    name = register_grid_experiment(
        "fake-grid-kill", log_dir=log_dir, unit_sleep=0.8
    )
    try:
        serial = execute_parallel(
            name, GridSpec(), runs_dir=tmp_path / "serial", workers=1
        )
        source = ExperimentWorkSource(name, None, tmp_path / "dist")
        victim = _pool_context().Process(
            target=_worker_main, args=(source, CHAOS)
        )
        victim.start()
        # let it claim a unit and get some way into executing it
        deadline = time.time() + 10
        store = LeaseStore(source.coordination_dir(), ttl=CHAOS.lease_ttl)
        while not store.active_leases() and time.time() < deadline:
            time.sleep(0.05)
        assert store.active_leases(), "victim never claimed a lease"
        victim.kill()
        victim.join(timeout=30)

        dist = execute_distributed(
            name,
            GridSpec(),
            runs_dir=tmp_path / "dist",
            workers=2,
            cfg=CHAOS,
        )
        assert result_bytes(serial) == result_bytes(dist)
    finally:
        registry_module.unregister(name)


def test_dataset_chaos_manifest_identical(tmp_path, monkeypatch):
    config = tiny_pipeline_config()
    serial = build_shards(config, tmp_path / "serial", workers=1)
    monkeypatch.setenv("REPRO_FAULT_PLAN", "torn_write@*")
    dist = build_shards_distributed(
        config, tmp_path / "dist", workers=2, cfg=CHAOS
    )
    assert dist.manifest == serial.manifest
    assert (tmp_path / "serial" / "manifest.json").read_bytes() == (
        tmp_path / "dist" / "manifest.json"
    ).read_bytes()
    for shard in serial.manifest["shards"]:
        assert (tmp_path / "serial" / shard["filename"]).read_bytes() == (
            tmp_path / "dist" / shard["filename"]
        ).read_bytes()


def test_crash_fault_executes_unit_exactly_once_more(
    tmp_path, grid, monkeypatch
):
    # crash_before_commit costs exactly one extra execution of the
    # targeted unit (the crashed attempt), never a crash loop
    name, log_dir = grid
    monkeypatch.setenv("REPRO_FAULT_PLAN", "crash_before_commit@beta")
    execute_distributed(
        name, GridSpec(), runs_dir=tmp_path / "dist", workers=2, cfg=CHAOS
    )
    assert count_unit_executions(log_dir, "beta") == 2
    assert count_unit_executions(log_dir, "alpha") == 1
    assert count_unit_executions(log_dir, "gamma") == 1
