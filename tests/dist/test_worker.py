"""The claim/execute/commit worker loop: heartbeats, drain, quarantine."""

import threading
import time

import pytest

from repro.dist.config import DistConfig
from repro.dist.leases import LeaseStore
from repro.dist.work import ExperimentWorkSource
from repro.dist.worker import run_worker
from repro.runtime import registry as registry_module

from ..helpers import GridSpec, count_unit_executions, register_grid_experiment

FAST = DistConfig(
    lease_ttl=5.0,
    heartbeat_interval=0.2,
    max_attempts=2,
    backoff_base=0.05,
    backoff_cap=0.1,
    poll_interval=0.02,
)


@pytest.fixture
def grid(tmp_path):
    log_dir = tmp_path / "log"
    log_dir.mkdir()
    name = register_grid_experiment("fake-grid", log_dir=log_dir)
    try:
        yield name, log_dir
    finally:
        registry_module.unregister(name)


def make_source(name, tmp_path, spec=None):
    return ExperimentWorkSource(name, spec, tmp_path / "runs")


class TestRunWorker:
    def test_single_worker_resolves_everything(self, tmp_path, grid):
        name, log_dir = grid
        source = make_source(name, tmp_path)
        report = run_worker(source, FAST)
        assert sorted(report.completed) == sorted(
            item.key for item in source.items()
        )
        assert report.failed == 0 and report.poisoned == []
        assert all(item.is_done() for item in source.items())
        assert count_unit_executions(log_dir) == 3
        # every lease was released on the way out
        store = LeaseStore(source.coordination_dir(), ttl=FAST.lease_ttl)
        assert store.active_leases() == []

    def test_second_worker_finds_nothing(self, tmp_path, grid):
        name, log_dir = grid
        source = make_source(name, tmp_path)
        run_worker(source, FAST)
        report = run_worker(source, FAST)
        assert report.completed == []
        assert report.skipped_done == 0  # done items are skipped pre-claim
        assert count_unit_executions(log_dir) == 3

    def test_heartbeat_outlives_slow_units(self, tmp_path):
        # units take longer than the lease TTL: only live heartbeats keep
        # a rival worker from reclaiming mid-execution and double-running
        log_dir = tmp_path / "log"
        log_dir.mkdir()
        name = register_grid_experiment(
            "fake-grid-slow", log_dir=log_dir, unit_sleep=1.2
        )
        cfg = DistConfig(
            lease_ttl=0.6,
            heartbeat_interval=0.15,
            max_attempts=2,
            backoff_base=0.05,
            backoff_cap=0.1,
            poll_interval=0.02,
        )
        try:
            source = make_source(name, tmp_path)
            reports = []
            threads = [
                threading.Thread(
                    target=lambda i=i: reports.append(
                        run_worker(source, cfg, owner=f"w{i}@test")
                    )
                )
                for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            registry_module.unregister(name)
        assert all(item.is_done() for item in source.items())
        for row in ("alpha", "beta", "gamma"):
            assert count_unit_executions(log_dir, row) == 1
        assert sum(r.abandoned for r in reports) == 0

    def test_preset_stop_event_drains_without_claiming(self, tmp_path, grid):
        name, log_dir = grid
        source = make_source(name, tmp_path)
        stop = threading.Event()
        stop.set()
        report = run_worker(source, FAST, stop_event=stop)
        assert report.drained
        assert report.completed == []
        assert count_unit_executions(log_dir) == 0

    def test_stop_mid_run_finishes_in_flight_and_releases(
        self, tmp_path
    ):
        log_dir = tmp_path / "log"
        log_dir.mkdir()
        name = register_grid_experiment(
            "fake-grid-drain", log_dir=log_dir, unit_sleep=0.5
        )
        try:
            source = make_source(name, tmp_path)
            stop = threading.Event()
            out = []
            worker = threading.Thread(
                target=lambda: out.append(
                    run_worker(source, FAST, stop_event=stop)
                )
            )
            worker.start()
            stop_timer = threading.Timer(0.15, stop.set)
            stop_timer.start()
            worker.join(timeout=30)
            stop_timer.cancel()
            assert not worker.is_alive()
            report = out[0]
            assert report.drained
            # the in-flight unit was finished and committed, not dropped
            assert len(report.completed) >= 1
            store = LeaseStore(
                source.coordination_dir(), ttl=FAST.lease_ttl
            )
            assert store.active_leases() == []
            # a fresh worker completes the remainder
            run_worker(source, FAST)
            assert all(item.is_done() for item in source.items())
            for row in ("alpha", "beta", "gamma"):
                assert count_unit_executions(log_dir, row) == 1
        finally:
            registry_module.unregister(name)

    def test_failing_unit_retries_then_quarantines(self, tmp_path, grid):
        name, log_dir = grid
        spec = GridSpec(rows=("alpha", "explode"))
        source = make_source(name, tmp_path, spec)
        report = run_worker(source, FAST)
        # alpha committed; explode burned max_attempts then got poisoned
        done = [item for item in source.items() if item.is_done()]
        assert [item.label for item in done] == ["alpha"]
        assert report.failed == FAST.max_attempts
        assert len(report.poisoned) == 1
        store = LeaseStore(source.coordination_dir(), ttl=FAST.lease_ttl)
        poisoned = store.poisoned()
        (record,) = poisoned.values()
        assert record["attempts"] == FAST.max_attempts
        assert "unit exploded" in record["last_error"]
        assert count_unit_executions(log_dir, "alpha") == 1
        # a second worker sees a fully-resolved source and returns at once
        again = run_worker(source, FAST)
        assert again.completed == [] and again.failed == 0

    def test_final_attempt_in_flight_is_not_poisoned_by_peers(self, tmp_path):
        # attempts are recorded before execution, so while one worker
        # runs an item's *final* permitted attempt its count already
        # reads max_attempts; a scanning peer must not quarantine it out
        # from under the live lease.  max_attempts=1 makes every first
        # claim a final attempt, and slow units widen the window.
        log_dir = tmp_path / "log"
        log_dir.mkdir()
        name = register_grid_experiment(
            "fake-grid-final", log_dir=log_dir, unit_sleep=0.4
        )
        cfg = DistConfig(
            lease_ttl=5.0,
            heartbeat_interval=0.1,
            max_attempts=1,
            backoff_base=0.05,
            backoff_cap=0.1,
            poll_interval=0.02,
        )
        try:
            source = make_source(name, tmp_path)
            reports = []
            threads = [
                threading.Thread(
                    target=lambda i=i: reports.append(
                        run_worker(source, cfg, owner=f"w{i}@test")
                    )
                )
                for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            registry_module.unregister(name)
        assert all(item.is_done() for item in source.items())
        assert all(r.poisoned == [] for r in reports)
        store = LeaseStore(source.coordination_dir(), ttl=cfg.lease_ttl)
        assert store.poisoned() == {}
        for row in ("alpha", "beta", "gamma"):
            assert count_unit_executions(log_dir, row) == 1

    def test_orphaned_exhausted_item_is_quarantined(self, tmp_path, grid):
        # a worker that crashed mid-final-attempt leaves count ==
        # max_attempts, no poison record and (eventually) no fresh
        # lease: the next scan must still converge by acquiring the
        # lease and quarantining — never by re-executing
        name, log_dir = grid
        spec = GridSpec(rows=("alpha", "explode"))
        source = make_source(name, tmp_path, spec)
        store = LeaseStore(source.coordination_dir(), ttl=FAST.lease_ttl)
        (explode,) = [i for i in source.items() if i.label == "explode"]
        store.record_attempt(
            explode.key,
            FAST.max_attempts,
            next_eligible_at=0.0,
            last_error="RuntimeError: unit exploded",
        )
        report = run_worker(source, FAST)
        assert report.poisoned == [explode.key]
        assert report.failed == 0
        assert count_unit_executions(log_dir, "explode") == 0
        record = store.poisoned()[explode.key]
        assert record["attempts"] == FAST.max_attempts
        assert store.active_leases() == []

    def test_quarantine_blocked_by_live_foreign_lease(self, tmp_path, grid):
        # an exhausted-looking item under a *fresh* foreign lease is a
        # final attempt in flight: the scan must leave it alone
        name, _ = grid
        spec = GridSpec(rows=("alpha",))
        source = make_source(name, tmp_path, spec)
        (item,) = source.items()
        store = LeaseStore(source.coordination_dir(), ttl=FAST.lease_ttl)
        store.record_attempt(
            item.key, FAST.max_attempts, next_eligible_at=0.0
        )
        assert store.try_acquire(item.key, "rival@host:1:aa") is not None
        stop = threading.Event()
        out = []
        worker = threading.Thread(
            target=lambda: out.append(
                run_worker(source, FAST, stop_event=stop)
            )
        )
        worker.start()
        time.sleep(0.3)  # several scan rounds against the held item
        assert store.poisoned() == {}
        stop.set()
        worker.join(timeout=30)
        assert not worker.is_alive()
        assert out[0].drained and out[0].poisoned == []
        # the rival's lease was never disturbed
        assert store.owns(item.key, "rival@host:1:aa")

    def test_unitless_experiment_rejected(self, tmp_path):
        from repro.runtime import ExperimentResult, experiment

        @experiment("fake-unitless", spec=GridSpec, title="No units")
        def run(spec):
            return ExperimentResult(
                experiment="fake-unitless", rows=[], table=""
            )

        try:
            with pytest.raises(ValueError, match="unit decomposition"):
                ExperimentWorkSource(
                    "fake-unitless", GridSpec(), tmp_path / "runs"
                )
        finally:
            registry_module.unregister("fake-unitless")

    def test_progress_events_are_emitted(self, tmp_path, grid):
        name, _ = grid
        source = make_source(name, tmp_path)
        events = []
        run_worker(source, FAST, progress=events.append)
        assert sorted(e["label"] for e in events) == [
            "alpha", "beta", "gamma",
        ]
        assert {e["status"] for e in events} == {"done"}
