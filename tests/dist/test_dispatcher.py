"""Dispatcher supervision and the high-level distributed entry points."""

import pickle

import pytest

from repro.dist.config import DistConfig
from repro.dist.dispatcher import (
    PoisonedWorkError,
    build_shards_distributed,
    execute_distributed,
    run_distributed,
)
from repro.dist.leases import LeaseStore
from repro.dist.work import (
    DatasetWorkSource,
    ExperimentWorkSource,
    rebuild_source,
)
from repro.dist.worker import run_worker
from repro.runtime import execute_parallel
from repro.runtime import registry as registry_module
from repro.datagen.pipeline import build_shards

from ..helpers import (
    GridSpec,
    count_unit_executions,
    register_grid_experiment,
    tiny_pipeline_config,
)

FAST = DistConfig(
    lease_ttl=5.0,
    heartbeat_interval=0.2,
    max_attempts=2,
    backoff_base=0.05,
    backoff_cap=0.1,
    poll_interval=0.02,
)


@pytest.fixture
def grid(tmp_path):
    log_dir = tmp_path / "log"
    log_dir.mkdir()
    name = register_grid_experiment("fake-grid", log_dir=log_dir)
    try:
        yield name, log_dir
    finally:
        registry_module.unregister(name)


def result_bytes(record):
    return (record.out_dir / "result.json").read_bytes()


class TestExecuteDistributed:
    def test_byte_identical_to_serial(self, tmp_path, grid):
        name, _ = grid
        serial = execute_parallel(
            name, GridSpec(), runs_dir=tmp_path / "serial", workers=1
        )
        dist = execute_distributed(
            name,
            GridSpec(),
            runs_dir=tmp_path / "dist",
            workers=2,
            cfg=FAST,
        )
        assert not dist.cache_hit
        assert result_bytes(serial) == result_bytes(dist)

    def test_cache_hit_on_rerun(self, tmp_path, grid):
        name, log_dir = grid
        first = execute_distributed(
            name, GridSpec(), runs_dir=tmp_path / "runs", workers=2, cfg=FAST
        )
        executions = count_unit_executions(log_dir)
        again = execute_distributed(
            name, GridSpec(), runs_dir=tmp_path / "runs", workers=2, cfg=FAST
        )
        assert again.cache_hit
        assert result_bytes(first) == result_bytes(again)
        assert count_unit_executions(log_dir) == executions

    def test_poisoned_unit_raises_with_context(self, tmp_path, grid):
        name, _ = grid
        with pytest.raises(PoisonedWorkError) as excinfo:
            execute_distributed(
                name,
                GridSpec(rows=("alpha", "explode")),
                runs_dir=tmp_path / "runs",
                workers=1,
                cfg=FAST,
            )
        assert len(excinfo.value.poisoned) == 1
        assert "unit exploded" in str(excinfo.value)

    def test_manifest_records_dist_metadata(self, tmp_path, grid):
        import json

        name, _ = grid
        record = execute_distributed(
            name, GridSpec(), runs_dir=tmp_path / "runs", workers=2, cfg=FAST
        )
        manifest = json.loads((record.out_dir / "manifest.json").read_text())
        dist = manifest["dist"]
        assert dist["mode"] == "distributed"
        assert dist["workers"] == 2
        assert dist["max_attempts"] == FAST.max_attempts


class TestRunDistributed:
    def test_already_resolved_source_returns_immediately(
        self, tmp_path, grid
    ):
        name, log_dir = grid
        source = ExperimentWorkSource(name, None, tmp_path / "runs")
        run_worker(source, FAST)
        executions = count_unit_executions(log_dir)
        summary = run_distributed(source, workers=2, cfg=FAST)
        assert summary.worker_deaths == 0
        assert not summary.degraded
        assert count_unit_executions(log_dir) == executions

    def test_crashed_worker_is_reaped_and_fleet_recovers(
        self, tmp_path, grid, monkeypatch
    ):
        # one worker, told to die right before committing beta: the
        # dispatcher must reap the corpse and respawn (or fall back
        # inline) so the run still resolves without operator action
        name, _ = grid
        monkeypatch.setenv("REPRO_FAULT_PLAN", "crash_before_commit@beta")
        source = ExperimentWorkSource(name, None, tmp_path / "runs")
        summary = run_distributed(source, workers=1, cfg=FAST)
        assert summary.worker_deaths >= 1
        assert summary.respawns >= 1 or summary.ran_inline
        assert summary.poisoned == {}
        assert all(item.is_done() for item in source.items())


class TestBuildShardsDistributed:
    def test_identical_to_pool_build(self, tmp_path):
        config = tiny_pipeline_config()
        serial = build_shards(config, tmp_path / "serial", workers=1)
        dist = build_shards_distributed(
            config, tmp_path / "dist", workers=2, cfg=FAST
        )
        assert not dist.cache_hit
        assert dist.manifest == serial.manifest
        for shard in serial.manifest["shards"]:
            a = (tmp_path / "serial" / shard["filename"]).read_bytes()
            b = (tmp_path / "dist" / shard["filename"]).read_bytes()
            assert a == b
        # and the manifest files are byte-identical on disk too
        assert (tmp_path / "serial" / "manifest.json").read_bytes() == (
            tmp_path / "dist" / "manifest.json"
        ).read_bytes()

    def test_cache_hit_on_rebuild(self, tmp_path):
        config = tiny_pipeline_config()
        build_shards_distributed(
            config, tmp_path / "data", workers=2, cfg=FAST
        )
        again = build_shards_distributed(
            config, tmp_path / "data", workers=2, cfg=FAST
        )
        assert again.cache_hit

    def test_stale_config_coordination_state_cannot_wedge_build(
        self, tmp_path
    ):
        # an aborted build of a *different* config leaves attempt counts
        # and quarantine markers in .dist (and, crashing pre-manifest,
        # no stale manifest to trip the cleanup); item keys embed the
        # config hash, so a later build must sail past them
        old = tiny_pipeline_config(seed=11)
        new = tiny_pipeline_config(seed=12)
        out = tmp_path / "data"
        old_source = DatasetWorkSource(old, out)
        store = LeaseStore(old_source.coordination_dir(), ttl=5.0)
        for item in old_source.items():
            store.poison(item.key, attempts=3, last_error="boom")
        old_keys = {item.key for item in old_source.items()}
        new_keys = {item.key for item in DatasetWorkSource(new, out).items()}
        assert old_keys.isdisjoint(new_keys)
        result = build_shards_distributed(new, out, workers=1, cfg=FAST)
        assert not result.cache_hit
        assert result.manifest["config_hash"] == new.config_hash()


class TestSubprocessPayload:
    def test_experiment_payload_ships_primitives(self, tmp_path, grid):
        # the Experiment behind a dynamically registered source holds
        # closure callables that cannot pickle — exactly what a spawn
        # start method would have to ship if the source object itself
        # crossed the process boundary
        name, _ = grid
        source = ExperimentWorkSource(name, GridSpec(), tmp_path / "runs")
        with pytest.raises((pickle.PicklingError, AttributeError)):
            pickle.dumps(source)
        kind, args = source.subprocess_payload()
        kind, args = pickle.loads(pickle.dumps((kind, args)))
        rebuilt = rebuild_source(kind, args)
        assert [i.key for i in rebuilt.items()] == [
            i.key for i in source.items()
        ]
        assert rebuilt.coordination_dir() == source.coordination_dir()

    def test_dataset_payload_round_trips(self, tmp_path):
        config = tiny_pipeline_config()
        source = DatasetWorkSource(config, tmp_path / "data")
        kind, args = pickle.loads(
            pickle.dumps(source.subprocess_payload())
        )
        rebuilt = rebuild_source(kind, args)
        assert [i.key for i in rebuilt.items()] == [
            i.key for i in source.items()
        ]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown work-source kind"):
            rebuild_source("nonsense", ())
