"""Dispatcher supervision and the high-level distributed entry points."""

import pytest

from repro.dist.config import DistConfig
from repro.dist.dispatcher import (
    PoisonedWorkError,
    build_shards_distributed,
    execute_distributed,
    run_distributed,
)
from repro.dist.work import ExperimentWorkSource
from repro.dist.worker import run_worker
from repro.runtime import execute_parallel
from repro.runtime import registry as registry_module
from repro.datagen.pipeline import build_shards

from ..helpers import (
    GridSpec,
    count_unit_executions,
    register_grid_experiment,
    tiny_pipeline_config,
)

FAST = DistConfig(
    lease_ttl=5.0,
    heartbeat_interval=0.2,
    max_attempts=2,
    backoff_base=0.05,
    backoff_cap=0.1,
    poll_interval=0.02,
)


@pytest.fixture
def grid(tmp_path):
    log_dir = tmp_path / "log"
    log_dir.mkdir()
    name = register_grid_experiment("fake-grid", log_dir=log_dir)
    try:
        yield name, log_dir
    finally:
        registry_module.unregister(name)


def result_bytes(record):
    return (record.out_dir / "result.json").read_bytes()


class TestExecuteDistributed:
    def test_byte_identical_to_serial(self, tmp_path, grid):
        name, _ = grid
        serial = execute_parallel(
            name, GridSpec(), runs_dir=tmp_path / "serial", workers=1
        )
        dist = execute_distributed(
            name,
            GridSpec(),
            runs_dir=tmp_path / "dist",
            workers=2,
            cfg=FAST,
        )
        assert not dist.cache_hit
        assert result_bytes(serial) == result_bytes(dist)

    def test_cache_hit_on_rerun(self, tmp_path, grid):
        name, log_dir = grid
        first = execute_distributed(
            name, GridSpec(), runs_dir=tmp_path / "runs", workers=2, cfg=FAST
        )
        executions = count_unit_executions(log_dir)
        again = execute_distributed(
            name, GridSpec(), runs_dir=tmp_path / "runs", workers=2, cfg=FAST
        )
        assert again.cache_hit
        assert result_bytes(first) == result_bytes(again)
        assert count_unit_executions(log_dir) == executions

    def test_poisoned_unit_raises_with_context(self, tmp_path, grid):
        name, _ = grid
        with pytest.raises(PoisonedWorkError) as excinfo:
            execute_distributed(
                name,
                GridSpec(rows=("alpha", "explode")),
                runs_dir=tmp_path / "runs",
                workers=1,
                cfg=FAST,
            )
        assert len(excinfo.value.poisoned) == 1
        assert "unit exploded" in str(excinfo.value)

    def test_manifest_records_dist_metadata(self, tmp_path, grid):
        import json

        name, _ = grid
        record = execute_distributed(
            name, GridSpec(), runs_dir=tmp_path / "runs", workers=2, cfg=FAST
        )
        manifest = json.loads((record.out_dir / "manifest.json").read_text())
        dist = manifest["dist"]
        assert dist["mode"] == "distributed"
        assert dist["workers"] == 2
        assert dist["max_attempts"] == FAST.max_attempts


class TestRunDistributed:
    def test_already_resolved_source_returns_immediately(
        self, tmp_path, grid
    ):
        name, log_dir = grid
        source = ExperimentWorkSource(name, None, tmp_path / "runs")
        run_worker(source, FAST)
        executions = count_unit_executions(log_dir)
        summary = run_distributed(source, workers=2, cfg=FAST)
        assert summary.worker_deaths == 0
        assert not summary.degraded
        assert count_unit_executions(log_dir) == executions

    def test_crashed_worker_is_reaped_and_fleet_recovers(
        self, tmp_path, grid, monkeypatch
    ):
        # one worker, told to die right before committing beta: the
        # dispatcher must reap the corpse and respawn (or fall back
        # inline) so the run still resolves without operator action
        name, _ = grid
        monkeypatch.setenv("REPRO_FAULT_PLAN", "crash_before_commit@beta")
        source = ExperimentWorkSource(name, None, tmp_path / "runs")
        summary = run_distributed(source, workers=1, cfg=FAST)
        assert summary.worker_deaths >= 1
        assert summary.respawns >= 1 or summary.ran_inline
        assert summary.poisoned == {}
        assert all(item.is_done() for item in source.items())


class TestBuildShardsDistributed:
    def test_identical_to_pool_build(self, tmp_path):
        config = tiny_pipeline_config()
        serial = build_shards(config, tmp_path / "serial", workers=1)
        dist = build_shards_distributed(
            config, tmp_path / "dist", workers=2, cfg=FAST
        )
        assert not dist.cache_hit
        assert dist.manifest == serial.manifest
        for shard in serial.manifest["shards"]:
            a = (tmp_path / "serial" / shard["filename"]).read_bytes()
            b = (tmp_path / "dist" / shard["filename"]).read_bytes()
            assert a == b
        # and the manifest files are byte-identical on disk too
        assert (tmp_path / "serial" / "manifest.json").read_bytes() == (
            tmp_path / "dist" / "manifest.json"
        ).read_bytes()

    def test_cache_hit_on_rebuild(self, tmp_path):
        config = tiny_pipeline_config()
        build_shards_distributed(
            config, tmp_path / "data", workers=2, cfg=FAST
        )
        again = build_shards_distributed(
            config, tmp_path / "data", workers=2, cfg=FAST
        )
        assert again.cache_hit
