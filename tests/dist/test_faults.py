"""Fault-plan parsing and the once-per-run fault injector."""

import multiprocessing

import pytest

from repro.dist.faults import (
    CRASH_EXIT_CODE,
    FAULT_KINDS,
    FAULT_PLAN_ENV,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
)


class TestFaultPlanParse:
    def test_single_clause(self):
        plan = FaultPlan.parse("crash_before_commit@beta")
        assert len(plan.specs) == 1
        assert plan.specs[0].kind == "crash_before_commit"
        assert plan.specs[0].key == "beta"

    def test_multiple_clauses_and_whitespace(self):
        plan = FaultPlan.parse(
            " crash_after_commit@alpha ; torn_write@* ;"
        )
        assert [(s.kind, s.key) for s in plan.specs] == [
            ("crash_after_commit", "alpha"),
            ("torn_write", "*"),
        ]

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.parse("")
        assert FaultPlan.parse("stall_past_lease@x")

    def test_bad_clause_raises(self):
        with pytest.raises(FaultPlanError, match="bad fault clause"):
            FaultPlan.parse("crash_before_commit")
        with pytest.raises(FaultPlanError, match="bad fault clause"):
            FaultPlan.parse("crash_before_commit@")

    def test_unknown_kind_raises(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultPlan.parse("set_on_fire@beta")

    def test_from_env(self):
        plan = FaultPlan.from_env({FAULT_PLAN_ENV: "torn_write@shard-0"})
        assert plan.planned("torn_write", "shard-0") is not None
        assert FaultPlan.from_env({}) == FaultPlan()

    def test_planned_matching(self):
        plan = FaultPlan.parse("crash_before_commit@beta;torn_write@*")
        assert plan.planned("crash_before_commit", "beta") is not None
        assert plan.planned("crash_before_commit", "alpha") is None
        assert plan.planned("torn_write", "anything") is not None
        assert plan.planned("stall_past_lease", "beta") is None


def _take_in_subprocess(state_dir, queue):
    injector = FaultInjector(
        FaultPlan.parse("crash_before_commit@beta"), state_dir
    )
    queue.put(injector.take("crash_before_commit", "beta"))


class TestFaultInjector:
    def test_fires_exactly_once_in_process(self, tmp_path):
        injector = FaultInjector(
            FaultPlan.parse("crash_before_commit@beta"), tmp_path
        )
        assert injector.take("crash_before_commit", "beta")
        assert not injector.take("crash_before_commit", "beta")

    def test_unplanned_fault_never_fires(self, tmp_path):
        injector = FaultInjector(FaultPlan(), tmp_path)
        for kind in FAULT_KINDS:
            assert not injector.take(kind, "beta")
        planned = FaultInjector(
            FaultPlan.parse("torn_write@alpha"), tmp_path
        )
        assert not planned.take("torn_write", "beta")
        assert not planned.take("crash_before_commit", "alpha")

    def test_wildcard_fires_once_total(self, tmp_path):
        # '*' is one planned fault, not one per item: the marker is keyed
        # by the spec, so the first matching item takes the only firing
        injector = FaultInjector(FaultPlan.parse("torn_write@*"), tmp_path)
        assert injector.take("torn_write", "alpha")
        assert not injector.take("torn_write", "beta")

    def test_fires_exactly_once_across_processes(self, tmp_path):
        injector = FaultInjector(
            FaultPlan.parse("crash_before_commit@beta"), tmp_path
        )
        assert injector.take("crash_before_commit", "beta")
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        proc = ctx.Process(
            target=_take_in_subprocess, args=(tmp_path, queue)
        )
        proc.start()
        fired = queue.get(timeout=30)
        proc.join(timeout=30)
        assert fired is False

    def test_crash_exit_code_is_distinguishable(self):
        assert CRASH_EXIT_CODE == 57
