"""Lease lifecycle: acquire, heartbeat, stale reclaim, attempts, poison."""

import json
import threading

from repro.dist.leases import (
    AttemptRecord,
    Lease,
    LeaseStore,
    new_owner_id,
)


def make_store(tmp_path, ttl=10.0):
    return LeaseStore(tmp_path / "coord", ttl=ttl)


class TestOwnerId:
    def test_unique_and_labelled(self):
        a = new_owner_id("worker")
        b = new_owner_id("worker")
        assert a != b
        assert a.startswith("worker@")


class TestAcquireRelease:
    def test_acquire_then_foreign_acquire_fails(self, tmp_path):
        store = make_store(tmp_path)
        lease = store.try_acquire("k", "owner-a")
        assert lease is not None and lease.owner == "owner-a"
        assert lease.attempt == 1
        assert store.owns("k", "owner-a")
        assert store.try_acquire("k", "owner-b") is None

    def test_release_frees_the_key(self, tmp_path):
        store = make_store(tmp_path)
        store.try_acquire("k", "owner-a")
        assert store.release("k", "owner-a")
        assert store.read("k") is None
        assert store.try_acquire("k", "owner-b") is not None

    def test_release_by_non_owner_is_refused(self, tmp_path):
        store = make_store(tmp_path)
        store.try_acquire("k", "owner-a")
        assert not store.release("k", "owner-b")
        assert store.owns("k", "owner-a")

    def test_lease_file_is_complete_json(self, tmp_path):
        # the create path hard-links a fully-written temp file, so the
        # lease on disk is always parseable with every field present
        store = make_store(tmp_path)
        store.try_acquire("k", "owner-a")
        data = json.loads(store.lease_path("k").read_text())
        assert Lease.from_dict(data) is not None


class TestHeartbeat:
    def test_heartbeat_advances_timestamp(self, tmp_path):
        store = make_store(tmp_path)
        lease = store.try_acquire("k", "owner-a", now=100.0)
        assert lease.heartbeat_at == 100.0
        assert store.heartbeat("k", "owner-a")
        assert store.read("k").heartbeat_at > 100.0

    def test_heartbeat_after_loss_fails(self, tmp_path):
        store = make_store(tmp_path)
        store.try_acquire("k", "owner-a")
        store.release("k", "owner-a")
        assert not store.heartbeat("k", "owner-a")

    def test_heartbeat_by_non_owner_fails(self, tmp_path):
        store = make_store(tmp_path)
        store.try_acquire("k", "owner-a")
        assert not store.heartbeat("k", "owner-b")


class TestStaleReclaim:
    def test_stale_lease_is_reclaimed_with_attempt_bump(self, tmp_path):
        store = make_store(tmp_path, ttl=5.0)
        store.try_acquire("k", "dead-owner", now=1000.0)
        # TTL has long expired at now=2000
        lease = store.try_acquire("k", "owner-b", now=2000.0)
        assert lease is not None
        assert lease.owner == "owner-b"
        assert lease.attempt == 2

    def test_fresh_lease_is_not_reclaimed(self, tmp_path):
        store = make_store(tmp_path, ttl=5.0)
        store.try_acquire("k", "owner-a", now=1000.0)
        assert store.try_acquire("k", "owner-b", now=1004.0) is None

    def test_corrupt_lease_is_reclaimed(self, tmp_path):
        store = make_store(tmp_path)
        store.try_acquire("k", "owner-a")
        store.lease_path("k").write_text("{ not json")
        lease = store.try_acquire("k", "owner-b")
        assert lease is not None and lease.owner == "owner-b"

    def test_exactly_one_of_racing_claimants_wins(self, tmp_path):
        # N threads race to reclaim the same expired lease; the
        # tombstone-rename CAS must let exactly one through
        store = make_store(tmp_path, ttl=1.0)
        store.try_acquire("k", "dead-owner", now=0.0)
        barrier = threading.Barrier(8)
        wins = []
        lock = threading.Lock()

        def claim(n):
            contender = LeaseStore(tmp_path / "coord", ttl=1.0)
            barrier.wait()
            lease = contender.try_acquire("k", f"claimant-{n}", now=1e9)
            if lease is not None:
                with lock:
                    wins.append(lease.owner)

        threads = [
            threading.Thread(target=claim, args=(n,)) for n in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        assert store.read("k").owner == wins[0]
        assert store.read("k").attempt == 2

    def test_young_reclaim_marker_blocks_fresh_acquire(self, tmp_path):
        # a reclaim mid-flight shows as no lease file plus a young
        # marker; acquiring fresh in that window would reset the attempt
        # count and race the reclaimer's publish
        store = make_store(tmp_path, ttl=5.0)
        leases = tmp_path / "coord" / "leases"
        leases.mkdir(parents=True)
        (leases / ".k.json.reclaiming").write_text(
            json.dumps({"owner": "reclaimer", "at": 1000.0})
        )
        assert store.try_acquire("k", "owner-b", now=1002.0) is None

    def test_orphaned_reclaim_marker_is_swept(self, tmp_path):
        # reclaimer died between marker and publish: past the TTL the
        # marker is an orphan — it must not wedge the item, and it is
        # cleaned up on the way through
        store = make_store(tmp_path, ttl=5.0)
        leases = tmp_path / "coord" / "leases"
        leases.mkdir(parents=True)
        marker = leases / ".k.json.reclaiming"
        marker.write_text(json.dumps({"owner": "reclaimer", "at": 1000.0}))
        lease = store.try_acquire("k", "owner-b", now=2000.0)
        assert lease is not None and lease.owner == "owner-b"
        assert not marker.exists()

    def test_reclaim_leaves_no_tombstone_litter(self, tmp_path):
        store = make_store(tmp_path, ttl=1.0)
        store.try_acquire("k", "dead-owner", now=0.0)
        store.try_acquire("k", "owner-b", now=1e9)
        litter = [
            p
            for p in (tmp_path / "coord" / "leases").iterdir()
            if p.name != "k.json"
        ]
        assert litter == []


class TestAttempts:
    def test_default_record(self, tmp_path):
        store = make_store(tmp_path)
        assert store.attempts("missing") == AttemptRecord()

    def test_roundtrip(self, tmp_path):
        store = make_store(tmp_path)
        store.record_attempt("k", 2, 123.5, last_error="boom")
        rec = store.attempts("k")
        assert rec.count == 2
        assert rec.next_eligible_at == 123.5
        assert rec.last_error == "boom"

    def test_corrupt_record_reads_as_default(self, tmp_path):
        store = make_store(tmp_path)
        store.record_attempt("k", 1, 0.0)
        (tmp_path / "coord" / "attempts" / "k.json").write_text("garbage")
        assert store.attempts("k") == AttemptRecord()


class TestPoison:
    def test_poison_roundtrip(self, tmp_path):
        store = make_store(tmp_path)
        assert not store.is_poisoned("k")
        store.poison("k", attempts=3, last_error="kept exploding")
        assert store.is_poisoned("k")
        records = store.poisoned()
        assert set(records) == {"k"}
        assert records["k"]["attempts"] == 3
        assert records["k"]["last_error"] == "kept exploding"

    def test_no_quarantine_dir_means_nothing_poisoned(self, tmp_path):
        store = make_store(tmp_path)
        assert store.poisoned() == {}
