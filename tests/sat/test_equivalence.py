"""Tests for miter construction and SAT equivalence checking."""

import numpy as np
import pytest

from repro.aig import AIGBuilder, lit_negate
from repro.datagen.generators import carry_select_adder, ripple_adder
from repro.datagen.normalize import normalize_to_library, variegate
from repro.sat import build_miter, check_equivalence
from repro.sim import exhaustive_patterns, output_values, simulate_aig
from repro.synth import balance, netlist_to_aig, strash, synthesize

from ..helpers import random_netlist


def and2():
    b = AIGBuilder(num_pis=2)
    b.add_output(b.add_and(b.pi_lit(0), b.pi_lit(1)))
    return b.build("and2")


def or2():
    b = AIGBuilder(num_pis=2)
    n = b.add_and(lit_negate(b.pi_lit(0)), lit_negate(b.pi_lit(1)))
    b.add_output(lit_negate(n))
    return b.build("or2")


class TestBuildMiter:
    def test_identical_circuits_collapse(self):
        miter = build_miter(and2(), and2())
        assert miter.outputs[0] == 0  # structural hashing proves equality

    def test_interface_mismatch_rejected(self):
        b = AIGBuilder(num_pis=3)
        b.add_output(b.pi_lit(0))
        with pytest.raises(ValueError, match="PI count"):
            build_miter(and2(), b.build())

    def test_miter_simulates_difference(self):
        miter = build_miter(and2(), or2())
        pats = exhaustive_patterns(2)
        out = output_values(miter, simulate_aig(miter, pats))
        # AND and OR differ on patterns 01 and 10
        assert int(out[0, 0]) & 0xF == 0b0110


class TestCheckEquivalence:
    def test_equal(self):
        assert check_equivalence(and2(), and2()).equivalent

    def test_different_with_counterexample(self):
        result = check_equivalence(and2(), or2())
        assert not result.equivalent
        cex = result.counterexample
        assert cex is not None
        # verify the counterexample really distinguishes the circuits
        a, b = bool(cex[0]), bool(cex[1])
        assert (a and b) != (a or b)

    def test_synthesis_passes_formally_verified(self):
        """strash/balance/synthesize must be SAT-provably equivalent."""
        rng = np.random.default_rng(17)
        for _ in range(5):
            nl = random_netlist(rng, num_inputs=5, num_gates=20)
            raw = netlist_to_aig(nl)
            assert check_equivalence(raw, strash(raw)).equivalent
            assert check_equivalence(raw, balance(raw)).equivalent
            assert check_equivalence(raw, synthesize(nl)).equivalent

    def test_adder_architectures_equivalent(self):
        """Ripple and carry-select adders implement the same function."""
        left = synthesize(ripple_adder(6))
        right = synthesize(carry_select_adder(6, block=3))
        assert check_equivalence(left, right).equivalent

    def test_variegation_formally_equivalent(self):
        rng = np.random.default_rng(3)
        nl = normalize_to_library(ripple_adder(4))
        var = variegate(nl, rng)
        assert check_equivalence(
            netlist_to_aig(nl), netlist_to_aig(var)
        ).equivalent

    def test_detects_subtle_mutation(self):
        """Flipping one AND fan-in literal must be caught."""
        aig = synthesize(ripple_adder(4))
        mutated = aig.copy()
        mutated.ands[len(mutated.ands) // 2, 0] ^= 1  # complement one edge
        result = check_equivalence(aig, mutated)
        assert not result.equivalent
        # counterexample must actually expose the difference
        cex = result.counterexample
        pats = np.zeros((aig.num_pis, 1), dtype=np.uint64)
        pats[cex, 0] = 1
        out_l = output_values(aig, simulate_aig(aig, pats)) & np.uint64(1)
        out_r = output_values(mutated, simulate_aig(mutated, pats)) & np.uint64(1)
        assert not np.array_equal(out_l, out_r)
