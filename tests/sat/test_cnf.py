"""Tests for CNF construction and the Tseitin transformation."""


import pytest

from repro.aig import AIGBuilder, lit_negate
from repro.sat import CNF, aig_output_cnf, tseitin
from repro.sim import exhaustive_patterns, simulate_aig


class TestCNF:
    def test_new_var_monotone(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2

    def test_add_clause_validates(self):
        cnf = CNF(2)
        cnf.add_clause([1, -2])
        with pytest.raises(ValueError, match="empty"):
            cnf.add_clause([])
        with pytest.raises(ValueError, match="out of range"):
            cnf.add_clause([3])
        with pytest.raises(ValueError, match="out of range"):
            cnf.add_clause([0])

    def test_dimacs_format(self):
        cnf = CNF(2)
        cnf.add_clause([1, -2])
        cnf.add_unit(2)
        text = cnf.to_dimacs()
        assert text.splitlines()[0] == "p cnf 2 2"
        assert "1 -2 0" in text
        assert "2 0" in text

    def test_evaluate(self):
        cnf = CNF(2)
        cnf.add_clause([1, 2])
        assert cnf.evaluate({1: True, 2: False})
        assert not cnf.evaluate({1: False, 2: False})


def xor_aig():
    b = AIGBuilder(num_pis=2)
    a, c = b.pi_lit(0), b.pi_lit(1)
    t0 = b.add_and(a, lit_negate(c))
    t1 = b.add_and(lit_negate(a), c)
    n = b.add_and(lit_negate(t0), lit_negate(t1))
    b.add_output(lit_negate(n))
    return b.build("xor")


class TestTseitin:
    def test_clause_count(self):
        aig = xor_aig()
        cnf, _ = tseitin(aig)
        # 3 clauses per AND + 1 unit for the constant
        assert cnf.num_clauses == 3 * aig.num_ands + 1
        assert cnf.num_vars == aig.num_vars

    def test_models_match_simulation(self):
        """Every assignment satisfying the CNF must agree with simulation."""
        aig = xor_aig()
        cnf, var_map = tseitin(aig)
        pats = exhaustive_patterns(2)
        values = simulate_aig(aig, pats)
        for pattern in range(4):
            assignment = {var_map[0]: False}
            for i in range(2):
                bit = bool((int(pats[i, 0]) >> pattern) & 1)
                assignment[var_map[1 + i]] = bit
            for v in range(3, aig.num_vars):
                assignment[var_map[v]] = bool(
                    (int(values[v, 0]) >> pattern) & 1
                )
            assert cnf.evaluate(assignment), pattern

    def test_output_assertion(self):
        aig = xor_aig()
        cnf, _ = aig_output_cnf(aig, 0)
        base, _ = tseitin(aig)
        assert cnf.num_clauses == base.num_clauses + 1

    def test_output_index_validated(self):
        with pytest.raises(IndexError):
            aig_output_cnf(xor_aig(), 5)
