"""Tests for the DPLL solver, cross-checked against brute force."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import CNF, DecisionLimitExceeded, solve


def brute_force_sat(cnf: CNF) -> bool:
    for bits in itertools.product([False, True], repeat=cnf.num_vars):
        assignment = {v: bits[v - 1] for v in range(1, cnf.num_vars + 1)}
        if cnf.evaluate(assignment):
            return True
    return False


def make_cnf(num_vars, clauses):
    cnf = CNF(num_vars)
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


class TestBasics:
    def test_empty_formula_sat(self):
        assert solve(CNF(3)).satisfiable

    def test_single_unit(self):
        result = solve(make_cnf(1, [[1]]))
        assert result.satisfiable
        assert result.assignment[1] is True

    def test_contradictory_units(self):
        assert not solve(make_cnf(1, [[1], [-1]])).satisfiable

    def test_simple_implication_chain(self):
        # 1 and (1->2) and (2->3) and !3: UNSAT
        cnf = make_cnf(3, [[1], [-1, 2], [-2, 3], [-3]])
        assert not solve(cnf).satisfiable

    def test_model_satisfies_formula(self):
        cnf = make_cnf(4, [[1, 2], [-1, 3], [-2, -3], [2, 4]])
        result = solve(cnf)
        assert result.satisfiable
        assert cnf.evaluate(result.assignment)

    def test_pigeonhole_2_into_1_unsat(self):
        # two pigeons, one hole: p1 and p2 both in hole -> conflict
        cnf = make_cnf(2, [[1], [2], [-1, -2]])
        assert not solve(cnf).satisfiable

    def test_decision_limit(self):
        # force some search: 3-SAT random-ish instance
        clauses = [[1, 2, 3], [-1, -2, -3], [1, -2, 3], [-1, 2, -3]]
        with pytest.raises(DecisionLimitExceeded):
            solve(make_cnf(3, clauses), max_decisions=0)

    def test_statistics_populated(self):
        result = solve(make_cnf(3, [[1, 2], [-1, 2], [1, -2], [3]]))
        assert result.satisfiable
        assert result.propagations > 0


class TestPigeonhole:
    def test_php_3_pigeons_2_holes(self):
        """Classic small UNSAT family: 3 pigeons, 2 holes."""
        # var p_{i,j} = pigeon i in hole j, i in 0..2, j in 0..1
        def v(i, j):
            return 1 + 2 * i + j

        clauses = []
        for i in range(3):
            clauses.append([v(i, 0), v(i, 1)])  # each pigeon somewhere
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    clauses.append([-v(i1, j), -v(i2, j)])
        assert not solve(make_cnf(6, clauses)).satisfiable

    def test_php_3_pigeons_3_holes_sat(self):
        def v(i, j):
            return 1 + 3 * i + j

        clauses = []
        for i in range(3):
            clauses.append([v(i, 0), v(i, 1), v(i, 2)])
        for j in range(3):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    clauses.append([-v(i1, j), -v(i2, j)])
        cnf = make_cnf(9, clauses)
        result = solve(cnf)
        assert result.satisfiable
        assert cnf.evaluate(result.assignment)


class TestRandomised:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        num_vars = int(rng.integers(2, 9))
        num_clauses = int(rng.integers(1, 25))
        clauses = []
        for _ in range(num_clauses):
            width = int(rng.integers(1, min(4, num_vars + 1)))
            vars_ = rng.choice(num_vars, size=width, replace=False) + 1
            signs = rng.choice([-1, 1], size=width)
            clauses.append([int(s * v) for s, v in zip(signs, vars_)])
        cnf = make_cnf(num_vars, clauses)
        result = solve(cnf)
        assert result.satisfiable == brute_force_sat(cnf)
        if result.satisfiable:
            assert cnf.evaluate(result.assignment)
