"""Property-based tests (hypothesis) on core data structures and passes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aig import AND, lit_is_negated
from repro.graphdata import from_aig, merge
from repro.nn import Tensor, segment_softmax, segment_sum
from repro.sim import (
    cop_probabilities,
    exact_probabilities,
    find_reconvergences,
    monte_carlo_probabilities,
)
from repro.synth import (
    has_constant_outputs,
    netlist_to_aig,
    strash,
    sweep,
    synthesize,
)

from .helpers import random_netlist


def _random_aig(seed, min_gates=8, max_gates=30):
    rng = np.random.default_rng(seed)
    nl = random_netlist(
        rng,
        num_inputs=int(rng.integers(3, 6)),
        num_gates=int(rng.integers(min_gates, max_gates)),
        num_outputs=int(rng.integers(1, 4)),
    )
    return netlist_to_aig(nl)


class TestSynthesisProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_strash_idempotent(self, seed):
        aig = _random_aig(seed)
        once = strash(aig)
        twice = strash(once)
        assert twice.num_ands == once.num_ands

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_passes_never_grow(self, seed):
        aig = _random_aig(seed)
        hashed = strash(aig)
        assert hashed.num_ands <= aig.num_ands
        assert sweep(hashed).num_ands <= hashed.num_ands

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_synthesize_fixpoint(self, seed):
        """Re-synthesising an optimised AIG changes nothing substantial."""
        aig = synthesize(_random_aig(seed))
        again = synthesize(aig)
        assert again.num_ands <= aig.num_ands + 1

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_interface_preserved(self, seed):
        aig = _random_aig(seed)
        opt = synthesize(aig)
        assert opt.num_pis == aig.num_pis
        assert opt.num_outputs == aig.num_outputs


class TestProbabilityProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_probabilities_bounded(self, seed):
        aig = _random_aig(seed)
        for probs in (
            exact_probabilities(aig),
            monte_carlo_probabilities(aig, 1024, seed=seed),
            cop_probabilities(aig),
        ):
            assert (probs >= 0).all() and (probs <= 1).all()

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_and_probability_upper_bound(self, seed):
        """P(a & b) <= min(P(a'), P(b')) where a', b' are the edge values."""
        aig = _random_aig(seed)
        probs = exact_probabilities(aig)
        base = 1 + aig.num_pis
        for i in range(aig.num_ands):
            a, b = (int(x) for x in aig.ands[i])
            pa = probs[a >> 1]
            pa = 1 - pa if lit_is_negated(a) else pa
            pb = probs[b >> 1]
            pb = 1 - pb if lit_is_negated(b) else pb
            assert probs[base + i] <= min(pa, pb) + 1e-9


class TestGateGraphProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_expansion_counts(self, seed):
        aig = synthesize(_random_aig(seed))
        if has_constant_outputs(aig) or aig.num_ands == 0:
            return
        graph = aig.to_gate_graph()
        counts = graph.type_counts()
        assert counts["PI"] == aig.num_pis
        assert counts["AND"] == aig.num_ands
        # one NOT node per distinct complemented literal in use
        negated_vars = set()
        for i in range(aig.num_ands):
            for lit in (int(aig.ands[i, 0]), int(aig.ands[i, 1])):
                if lit & 1:
                    negated_vars.add(lit >> 1)
        for o in aig.outputs:
            if o & 1:
                negated_vars.add(o >> 1)
        assert counts["NOT"] == len(negated_vars)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_reconvergence_targets_are_and_nodes(self, seed):
        aig = synthesize(_random_aig(seed))
        if has_constant_outputs(aig) or aig.num_ands == 0:
            return
        graph = aig.to_gate_graph()
        levels = graph.levels()
        for edge in find_reconvergences(graph):
            assert graph.node_type[edge.target] == AND
            assert levels[edge.target] - levels[edge.source] == edge.level_diff
            assert edge.level_diff >= 2

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_merge_preserves_totals(self, seed):
        rng = np.random.default_rng(seed)
        graphs = []
        for k in range(3):
            aig = synthesize(_random_aig(seed + k, min_gates=10))
            if has_constant_outputs(aig) or aig.num_ands == 0:
                return
            graphs.append(from_aig(aig, num_patterns=256, seed=k))
        merged = merge(graphs)
        assert merged.num_nodes == sum(g.num_nodes for g in graphs)
        assert merged.num_edges == sum(g.num_edges for g in graphs)
        assert len(merged.skip_edges) == sum(len(g.skip_edges) for g in graphs)
        merged.validate()


class TestSegmentOpProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        num_edges=st.integers(1, 40),
        num_segments=st.integers(1, 8),
    )
    def test_segment_softmax_is_distribution(self, seed, num_edges, num_segments):
        rng = np.random.default_rng(seed)
        scores = Tensor(rng.normal(size=num_edges).astype(np.float32) * 5)
        seg = rng.integers(0, num_segments, size=num_edges)
        out = segment_softmax(scores, seg, num_segments).data
        assert (out >= 0).all()
        for s in range(num_segments):
            members = out[seg == s]
            if members.size:
                assert members.sum() == pytest.approx(1.0, abs=1e-4)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), num_edges=st.integers(1, 40))
    def test_segment_sum_conserves_mass(self, seed, num_edges):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(size=(num_edges, 3)).astype(np.float32))
        seg = rng.integers(0, 5, size=num_edges)
        out = segment_sum(x, seg, 5).data
        np.testing.assert_allclose(
            out.sum(axis=0), x.data.sum(axis=0), atol=1e-4
        )
