"""End-to-end tests of the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def adder_bench(tmp_path):
    path = tmp_path / "adder.bench"
    assert main(["generate", "ripple_adder", "--param", "width=4",
                 "-o", str(path)]) == 0
    return path


class TestGenerate:
    def test_writes_bench(self, tmp_path, capsys):
        path = tmp_path / "p.bench"
        assert main(["generate", "parity", "-o", str(path)]) == 0
        assert path.exists()
        assert "gates" in capsys.readouterr().out

    def test_unknown_family(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown family"):
            main(["generate", "frobnicator", "-o", str(tmp_path / "x.bench")])

    def test_bad_param(self, tmp_path):
        with pytest.raises(SystemExit, match="key=value"):
            main(["generate", "parity", "--param", "width",
                  "-o", str(tmp_path / "x.bench")])

    def test_verilog_output(self, tmp_path):
        path = tmp_path / "cmp.v"
        assert main(["generate", "comparator", "-o", str(path)]) == 0
        assert "module" in path.read_text()


class TestSynth:
    def test_synth_to_aiger(self, adder_bench, tmp_path, capsys):
        out = tmp_path / "adder.aag"
        assert main(["synth", str(adder_bench), "-o", str(out)]) == 0
        assert out.exists()
        assert "ANDs" in capsys.readouterr().out

    def test_unsupported_format(self, tmp_path):
        bogus = tmp_path / "c.blif"
        bogus.write_text("")
        with pytest.raises(SystemExit, match="unsupported"):
            main(["synth", str(bogus)])


class TestStatsSimFaults:
    def test_stats(self, adder_bench, capsys):
        assert main(["stats", str(adder_bench)]) == 0
        out = capsys.readouterr().out
        assert "reconvergence nodes" in out
        assert "levels" in out

    def test_sim(self, adder_bench, capsys):
        assert main(["sim", str(adder_bench), "--patterns", "2048"]) == 0
        assert "signal probabilities" in capsys.readouterr().out

    def test_faults(self, adder_bench, capsys):
        assert main(["faults", str(adder_bench), "--patterns", "512"]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out


class TestEquiv:
    def test_equivalent_after_synth(self, adder_bench, tmp_path, capsys):
        out = tmp_path / "adder.aag"
        main(["synth", str(adder_bench), "-o", str(out)])
        assert main(["equiv", str(adder_bench), str(out)]) == 0
        assert "EQUIVALENT" in capsys.readouterr().out

    def test_different_circuits(self, tmp_path, capsys):
        # same interface (8 inputs, 8 outputs), different functions
        gray = tmp_path / "gray.bench"
        incr = tmp_path / "incr.bench"
        main(["generate", "gray_to_binary", "--param", "width=8", "-o", str(gray)])
        main(["generate", "incrementer", "--param", "width=8", "-o", str(incr)])
        assert main(["equiv", str(gray), str(incr)]) == 1
        assert "DIFFERENT" in capsys.readouterr().out


class TestExperimentCLI:
    def test_list(self, capsys, tmp_path):
        assert main(["experiment", "list", "--runs-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "table2", "table3", "table4", "tsweep", "ablations"):
            assert name in out

    def test_run_then_cache_hit(self, capsys, tmp_path):
        args = ["experiment", "run", "table1", "--scale", "smoke",
                "--runs-dir", str(tmp_path)]
        assert main(args) == 0
        first = capsys.readouterr()
        assert "Table I" in first.out
        assert "[ran:" in first.err

        assert main(args) == 0
        second = capsys.readouterr()
        assert "Table I" in second.out
        assert "cache hit" in second.err
        assert second.out == first.out

    def test_report_requires_cached_run(self, capsys, tmp_path):
        args = ["experiment", "report", "table1", "--scale", "smoke",
                "--runs-dir", str(tmp_path)]
        assert main(args) == 1
        assert "no cached run" in capsys.readouterr().err
        main(["experiment", "run", "table1", "--scale", "smoke",
              "--runs-dir", str(tmp_path)])
        capsys.readouterr()
        assert main(args) == 0
        assert "Table I" in capsys.readouterr().out

    def test_json_and_markdown_formats(self, capsys, tmp_path):
        import json

        assert main(["experiment", "run", "table1", "--scale", "smoke",
                     "--runs-dir", str(tmp_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "table1"
        assert payload["rows"]
        assert main(["experiment", "report", "table1", "--scale", "smoke",
                     "--runs-dir", str(tmp_path), "--format", "markdown"]) == 0
        assert "| suite |" in capsys.readouterr().out

    def test_legacy_positional_form(self, capsys, tmp_path):
        # pre-registry spelling still works, routed through `run`
        assert main(["experiment", "table1", "--scale", "smoke",
                     "--runs-dir", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "Table I" in captured.out
        assert "deprecated" in captured.err

    def test_bad_set_override(self, tmp_path):
        with pytest.raises(SystemExit, match="key=value"):
            main(["experiment", "run", "table1", "--scale", "smoke",
                  "--runs-dir", str(tmp_path), "--set", "oops"])

    def test_unknown_spec_field(self, tmp_path):
        with pytest.raises(SystemExit, match="no field"):
            main(["experiment", "run", "table1", "--scale", "smoke",
                  "--runs-dir", str(tmp_path), "--set", "bogus=1"])

    def test_unknown_experiment(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown experiment"):
            main(["experiment", "run", "table99", "--runs-dir", str(tmp_path)])

    def test_bad_spec_value_is_clean_error(self, tmp_path):
        # a spec that parses but fails inside the runner must not traceback
        with pytest.raises(SystemExit, match="unknown ablation"):
            main(["experiment", "run", "ablations", "--scale", "smoke",
                  "--runs-dir", str(tmp_path), "--set", "which=bogus"])

    def test_operand_named_experiment_not_rewritten(self, tmp_path):
        from repro.cli import _rewrite_legacy_experiment_argv

        argv = ["equiv", "experiment", "other.v"]
        assert _rewrite_legacy_experiment_argv(argv) == argv

    def test_workers_run_matches_serial_and_shows_progress(
        self, capsys, tmp_path
    ):
        serial = ["experiment", "run", "table1", "--scale", "smoke",
                  "--runs-dir", str(tmp_path / "serial")]
        assert main(serial) == 0
        first = capsys.readouterr()
        assert "[unit 1/" in first.err  # live per-unit progress lines

        parallel = ["experiment", "run", "table1", "--scale", "smoke",
                    "--runs-dir", str(tmp_path / "par"), "--workers", "2"]
        assert main(parallel) == 0
        second = capsys.readouterr()
        assert second.out == first.out

        a = (tmp_path / "serial").glob("table1/*/result.json")
        b = (tmp_path / "par").glob("table1/*/result.json")
        assert next(iter(a)).read_bytes() == next(iter(b)).read_bytes()

    def test_quiet_suppresses_progress(self, capsys, tmp_path):
        assert main(["experiment", "run", "table1", "--scale", "smoke",
                     "--runs-dir", str(tmp_path), "--quiet"]) == 0
        assert "[unit" not in capsys.readouterr().err


class TestDistCLI:
    def test_dist_run_matches_serial(self, capsys, tmp_path):
        serial = ["experiment", "run", "table1", "--scale", "smoke",
                  "--runs-dir", str(tmp_path / "serial"), "--quiet"]
        assert main(serial) == 0
        first = capsys.readouterr()

        dist = ["experiment", "run", "table1", "--scale", "smoke",
                "--runs-dir", str(tmp_path / "dist"), "--dist",
                "--workers", "2", "--lease-ttl", "10",
                "--heartbeat-interval", "1"]
        assert main(dist) == 0
        second = capsys.readouterr()
        assert second.out == first.out

        a = (tmp_path / "serial").glob("table1/*/result.json")
        b = (tmp_path / "dist").glob("table1/*/result.json")
        assert next(iter(a)).read_bytes() == next(iter(b)).read_bytes()

    def test_standalone_worker_joins_and_reports(self, capsys, tmp_path):
        # against an already-resolved run the worker exits immediately
        # with an all-zero report — the mid-run case is covered by the
        # dist chaos suite, where timing is controllable
        run = ["experiment", "run", "table1", "--scale", "smoke",
               "--runs-dir", str(tmp_path), "--dist", "--quiet"]
        assert main(run) == 0
        capsys.readouterr()
        worker = ["worker", "experiment", "table1", "--scale", "smoke",
                  "--runs-dir", str(tmp_path), "--quiet"]
        assert main(worker) == 0
        out = capsys.readouterr().out
        assert "0 completed" in out
        assert "0 failed" in out

    def test_bad_dist_knob_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["experiment", "run", "table1", "--scale", "smoke",
                  "--runs-dir", str(tmp_path), "--dist",
                  "--lease-ttl", "-3"])


class TestExperimentCompareCLI:
    def _run(self, tmp_path, seed):
        args = ["experiment", "run", "table1", "--scale", "smoke",
                "--runs-dir", str(tmp_path), "--quiet"]
        if seed is not None:
            args += ["--seed", str(seed)]
        assert main(args) == 0

    def test_compare_two_runs(self, capsys, tmp_path):
        self._run(tmp_path, None)
        self._run(tmp_path, 1)
        capsys.readouterr()
        runs = sorted(str(p) for p in tmp_path.glob("table1/*"))
        assert len(runs) == 2
        assert main(["experiment", "compare", runs[0], runs[1]]) == 0
        out = capsys.readouterr().out
        assert "compare table1" in out
        assert "subcircuits" in out

    def test_compare_markdown_and_json(self, capsys, tmp_path):
        import json

        self._run(tmp_path, None)
        self._run(tmp_path, 1)
        capsys.readouterr()
        runs = sorted(str(p) for p in tmp_path.glob("table1/*"))
        assert main(["experiment", "compare", runs[0], runs[1],
                     "--format", "markdown"]) == 0
        assert "| row | metric |" in capsys.readouterr().out
        assert main(["experiment", "compare", runs[0], runs[1],
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_a"] == "table1"
        assert payload["rows"]

    def test_compare_hash_refs_under_runs_dir(self, capsys, tmp_path):
        self._run(tmp_path, None)
        self._run(tmp_path, 1)
        capsys.readouterr()
        names = sorted(p.name for p in tmp_path.glob("table1/*"))
        assert main(["experiment", "compare",
                     f"table1/{names[0]}", f"table1/{names[1]}",
                     "--runs-dir", str(tmp_path)]) == 0
        assert "compare table1" in capsys.readouterr().out

    def test_compare_missing_run_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="no run directory"):
            main(["experiment", "compare", "table1/abc", "table1/def",
                  "--runs-dir", str(tmp_path)])

    def test_compare_tolerances_annotate_but_do_not_gate(
        self, capsys, tmp_path
    ):
        self._run(tmp_path, None)
        self._run(tmp_path, 1)
        capsys.readouterr()
        limits = tmp_path / "limits.json"
        limits.write_text('{"bogus_metric": 0.1}')
        runs = sorted(str(p) for p in tmp_path.glob("table1/*"))
        # violations are reported, but without --fail-on-drift exit is 0
        assert main(["experiment", "compare", runs[0], runs[1],
                     "--tolerances", str(limits)]) == 0
        captured = capsys.readouterr()
        assert "MISSING: tolerance 'bogus_metric'" in captured.out
        assert "1 tolerance violation" in captured.err

    def test_compare_fail_on_drift_gates_exit_code(self, capsys, tmp_path):
        self._run(tmp_path, None)
        self._run(tmp_path, 1)
        capsys.readouterr()
        limits = tmp_path / "limits.json"
        limits.write_text('{"bogus_metric": 0.1}')
        runs = sorted(str(p) for p in tmp_path.glob("table1/*"))
        assert main(["experiment", "compare", runs[0], runs[1],
                     "--tolerances", str(limits), "--fail-on-drift"]) == 1
        capsys.readouterr()
        # an all-within gate passes: huge limit on a real metric
        limits.write_text('{"subcircuits": 1e9}')
        assert main(["experiment", "compare", runs[0], runs[1],
                     "--tolerances", str(limits), "--fail-on-drift"]) == 0
        assert "status" in capsys.readouterr().out

    def test_fail_on_drift_requires_tolerances(self, tmp_path):
        with pytest.raises(SystemExit, match="requires --tolerances"):
            main(["experiment", "compare", "a", "b", "--fail-on-drift"])

    def test_bad_tolerances_file_is_clean_error(self, capsys, tmp_path):
        self._run(tmp_path, None)
        capsys.readouterr()
        limits = tmp_path / "limits.json"
        limits.write_text("{nope")
        run = next(iter(tmp_path.glob("table1/*")))
        with pytest.raises(SystemExit, match="unreadable"):
            main(["experiment", "compare", str(run), str(run),
                  "--tolerances", str(limits)])


class TestGoldenCLI:
    """The capture -> commit -> verify loop through the CLI."""

    def _capture(self, tmp_path, *extra):
        return main(["experiment", "capture", "table1", "--scale", "smoke",
                     "--runs-dir", str(tmp_path / "runs"),
                     "--goldens-dir", str(tmp_path / "goldens"),
                     "--quiet", *extra])

    def _verify(self, tmp_path, *extra):
        return main(["experiment", "verify",
                     "--runs-dir", str(tmp_path / "runs"),
                     "--goldens-dir", str(tmp_path / "goldens"),
                     "--quiet", *extra])

    def _fixture_path(self, tmp_path):
        return next(iter((tmp_path / "goldens").glob("table1/*.json")))

    def test_capture_then_verify_roundtrip(self, capsys, tmp_path):
        assert self._capture(tmp_path) == 0
        out = capsys.readouterr().out
        assert "captured" in out and "table1" in out
        assert self._fixture_path(tmp_path).is_file()

        assert self._verify(tmp_path) == 0
        captured = capsys.readouterr()
        assert "PASS" in captured.out
        assert "verified 1 fixture: 1 passed, 0 failed" in captured.err

    def test_verify_detects_drift(self, capsys, tmp_path):
        import json

        assert self._capture(tmp_path) == 0
        capsys.readouterr()
        path = self._fixture_path(tmp_path)
        data = json.loads(path.read_text())
        data["metrics"][0]["value"] += 7  # int metric: tolerance 0
        data["metrics"][0]["tolerance"] = 0.5
        path.write_text(json.dumps(data, sort_keys=True))
        assert self._verify(tmp_path) == 1
        captured = capsys.readouterr()
        assert "DRIFT" in captured.out and "FAIL" in captured.out
        assert "1 failed" in captured.err

    def test_capture_tolerance_override_loosens_gate(self, capsys, tmp_path):
        import json

        assert self._capture(tmp_path, "--tolerance", "subcircuits=100") == 0
        capsys.readouterr()
        path = self._fixture_path(tmp_path)
        data = json.loads(path.read_text())
        for metric in data["metrics"]:
            if metric["metric"] == "subcircuits":
                metric["value"] += 7  # within the 100 override
        path.write_text(json.dumps(data, sort_keys=True))
        assert self._verify(tmp_path) == 0
        assert "PASS" in capsys.readouterr().out

    def test_verify_by_experiment_name_and_file(self, capsys, tmp_path):
        assert self._capture(tmp_path) == 0
        capsys.readouterr()
        assert self._verify(tmp_path, "table1") == 0
        capsys.readouterr()
        assert self._verify(tmp_path, str(self._fixture_path(tmp_path))) == 0
        assert "PASS" in capsys.readouterr().out

    def test_verify_markdown_and_json_formats(self, capsys, tmp_path):
        import json

        assert self._capture(tmp_path) == 0
        capsys.readouterr()
        assert self._verify(tmp_path, "--format", "markdown") == 0
        assert "| row | metric | golden |" in capsys.readouterr().out
        assert self._verify(tmp_path, "--format", "json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True

    def test_verify_corrupt_fixture_is_counted_failure(
        self, capsys, tmp_path
    ):
        assert self._capture(tmp_path) == 0
        capsys.readouterr()
        self._fixture_path(tmp_path).write_text("{nope")
        assert self._verify(tmp_path) == 1
        err = capsys.readouterr().err
        assert "ERROR:" in err and "corrupt" in err

    def test_verify_without_fixtures_fails(self, capsys, tmp_path):
        assert self._verify(tmp_path) == 1
        assert "no golden fixtures" in capsys.readouterr().err

    def test_verify_unknown_ref_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="no golden fixture"):
            self._verify(tmp_path, "nonesuch")

    def test_bad_tolerance_flag_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="metric=limit"):
            self._capture(tmp_path, "--tolerance", "oops")


class TestBenchCLI:
    def _run(self, tmp_path, name, extra=()):
        out = tmp_path / f"BENCH_{name}.json"
        args = ["bench", "run", "--suite", "small", "--name", name,
                "-o", str(out), "--dim", "8", "--iterations", "1",
                "--repeats", "1", "--epochs", "1", *extra]
        assert main(args) == 0
        return out

    def test_run_emits_bench_json(self, capsys, tmp_path):
        import json

        out = self._run(tmp_path, "fast")
        printed = capsys.readouterr().out
        assert "small" in printed and "wrote" in printed
        payload = json.loads(out.read_text())
        assert payload["variant"] == "compiled"
        metrics = payload["suites"]["small"]
        for key in ("forward_s", "backward_s", "train_epoch_s",
                    "nodes_per_s", "tracemalloc_peak_mb", "peak_rss_kb"):
            assert key in metrics

    def test_reference_variant_recorded(self, capsys, tmp_path):
        import json

        out = self._run(tmp_path, "ref", extra=("--reference",))
        assert json.loads(out.read_text())["variant"] == "reference"

    def test_unknown_suite_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown bench suite"):
            main(["bench", "run", "--suite", "gigantic",
                  "-o", str(tmp_path / "x.json")])

    def test_compare(self, capsys, tmp_path):
        import json

        a = self._run(tmp_path, "one")
        b = self._run(tmp_path, "two")
        capsys.readouterr()
        assert main(["bench", "compare", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "train_epoch_s" in out and "speedup" in out
        assert main(["bench", "compare", str(a), str(b),
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"]

    def test_aggregator_suite_runs(self, capsys, tmp_path):
        import json

        out = tmp_path / "BENCH_agg.json"
        assert main(["bench", "run", "--suite", "default_conv_sum",
                     "--name", "agg", "-o", str(out), "--dim", "8",
                     "--iterations", "1", "--repeats", "1",
                     "--epochs", "1"]) == 0
        metrics = json.loads(out.read_text())["suites"]["default_conv_sum"]
        assert metrics["aggregator"] == "conv_sum"
        assert metrics["batches"] > 1

    def test_compare_reports_missing_suites(self, capsys, tmp_path):
        import json

        def bench_file(path, suites):
            payload = {
                "name": path.stem, "variant": "compiled",
                "suites": {
                    s: {"train_epoch_s": 1.0, "forward_s": 1.0,
                        "backward_s": 1.0, "tracemalloc_peak_mb": 1.0}
                    for s in suites
                },
            }
            path.write_text(json.dumps(payload))
            return path

        a = bench_file(tmp_path / "a.json", ["small", "renamed_away"])
        b = bench_file(tmp_path / "b.json", ["small", "brand_new"])
        assert main(["bench", "compare", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        # a suite present in only one file must be called out, not
        # silently dropped from the comparison
        assert "missing suites" in out
        assert "renamed_away" in out and "brand_new" in out
        assert main(["bench", "compare", str(a), str(b),
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["missing_suites"] == {
            "old_only": ["renamed_away"], "new_only": ["brand_new"],
        }

    def test_compare_min_speedup_gate(self, capsys, tmp_path):
        # identical files give ~1x; an absurd bar must fail the gate,
        # and the gate only watches the deep suite (absent here -> fail)
        a = self._run(tmp_path, "one")
        assert main(["bench", "compare", str(a), str(a),
                     "--min-speedup", "1000"]) == 1

    def test_compare_missing_file_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="no such bench file"):
            main(["bench", "compare", str(tmp_path / "nope.json"),
                  str(tmp_path / "nope2.json")])


class TestServeQueryCLI:
    """Argument handling and a live serve round trip."""

    @pytest.fixture
    def running_server(self, tmp_path):
        import threading

        import numpy as np

        from repro.models import DeepGate
        from repro.nn.serialization import save_model_checkpoint
        from repro.serve import ServeServer, service_from_checkpoint

        ck = tmp_path / "ck.npz"
        save_model_checkpoint(
            DeepGate(dim=8, num_iterations=2, rng=np.random.default_rng(0)),
            ck,
        )
        srv = ServeServer(service_from_checkpoint(ck, max_wait_ms=0.0), port=0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            yield f"http://{srv.host}:{srv.port}"
        finally:
            srv.shutdown()
            thread.join(timeout=10)
            srv.close()

    def test_serve_requires_checkpoint_or_run(self):
        with pytest.raises(SystemExit):
            main(["serve"])

    def test_serve_unresolvable_run_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="train_backbone"):
            main(["serve", "--run", "train_backbone",
                  "--runs-dir", str(tmp_path)])

    def test_query_requires_circuit_or_stats(self):
        with pytest.raises(SystemExit, match="circuit file"):
            main(["query", "--url", "http://127.0.0.1:9"])

    def test_query_unknown_suffix_is_clean_error(self, tmp_path):
        path = tmp_path / "circuit.txt"
        path.write_text("whatever")
        with pytest.raises(SystemExit, match="unsupported circuit format"):
            main(["query", str(path), "--url", "http://127.0.0.1:9"])

    def test_query_unreachable_server_exits_1(self, adder_bench, capsys):
        assert main(["query", str(adder_bench),
                     "--url", "http://127.0.0.1:9", "--timeout", "2"]) == 1
        assert "transport_error" in capsys.readouterr().err

    def test_query_round_trip_and_cache_hit(
        self, running_server, adder_bench, capsys
    ):
        assert main(["query", str(adder_bench),
                     "--url", running_server]) == 0
        first = capsys.readouterr().out
        assert "cache_hit=False" in first
        assert main(["query", str(adder_bench),
                     "--url", running_server]) == 0
        assert "cache_hit=True" in capsys.readouterr().out

    def test_query_json_format(self, running_server, adder_bench, capsys):
        import json

        assert main(["query", str(adder_bench), "--url", running_server,
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_nodes"] == len(payload["predictions"])

    def test_query_stats(self, running_server, adder_bench, capsys):
        assert main(["query", str(adder_bench),
                     "--url", running_server]) == 0
        capsys.readouterr()
        assert main(["query", "--stats", "--url", running_server]) == 0
        out = capsys.readouterr().out
        assert "requests" in out and "cache:" in out

    def test_query_parse_error_exits_1(
        self, running_server, tmp_path, capsys
    ):
        bad = tmp_path / "bad.aag"
        bad.write_text("aag 2 1 0 1\nnonsense\n")
        assert main(["query", str(bad), "--url", running_server]) == 1
        assert "parse_error" in capsys.readouterr().err
