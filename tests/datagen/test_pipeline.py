"""Tests for the parallel sharded dataset pipeline.

The pipeline's contract is threefold: shard contents are a pure function
of the config (so builds are reproducible byte for byte), worker-pool
builds match the serial path exactly, and an unchanged config re-uses the
on-disk build as a cache hit while any config change invalidates it.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.datagen.pipeline import (
    PipelineConfig,
    build_shards,
    generate_shard,
    generate_suite,
    manifest_is_current,
    plan_shards,
)
from repro.graphdata import ShardedCircuitDataset

# small enough to build in well under a second
TINY = PipelineConfig(
    suites=(("EPFL", 3), ("ITC99", 3)),
    seed=11,
    num_patterns=256,
    max_nodes=200,
    max_levels=50,
    shard_size=2,
)


def dir_bytes(root):
    """filename -> bytes for every file in a dataset directory."""
    return {p.name: p.read_bytes() for p in sorted(root.iterdir())}


class TestConfig:
    def test_hash_stable(self):
        assert TINY.config_hash() == TINY.config_hash()
        clone = PipelineConfig.from_dict(TINY.to_dict())
        assert clone == TINY
        assert clone.config_hash() == TINY.config_hash()

    def test_hash_sensitive_to_every_knob(self):
        seen = {TINY.config_hash()}
        for change in (
            {"seed": 12},
            {"num_patterns": 512},
            {"max_nodes": 300},
            {"shard_size": 3},
            {"with_skip_edges": False},
            {"suites": (("EPFL", 3),)},
        ):
            h = dataclasses.replace(TINY, **change).config_hash()
            assert h not in seen
            seen.add(h)

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="unknown suite"):
            PipelineConfig(suites=(("NOPE", 3),))
        with pytest.raises(ValueError, match="positive count"):
            PipelineConfig(suites=(("EPFL", 0),))
        with pytest.raises(ValueError, match="twice"):
            PipelineConfig(suites=(("EPFL", 3), ("EPFL", 4)))
        with pytest.raises(ValueError, match="shard_size"):
            PipelineConfig(suites=(("EPFL", 1),), shard_size=0)
        with pytest.raises(ValueError, match="seed"):
            PipelineConfig(suites=(("EPFL", 1),), seed=-1)

    def test_plan_covers_counts(self):
        specs = plan_shards(TINY)
        per_suite = {}
        for s in specs:
            per_suite[s.suite] = per_suite.get(s.suite, 0) + s.count
            assert 1 <= s.count <= TINY.shard_size
        assert per_suite == {"EPFL": 3, "ITC99": 3}
        # shard indices are dense per suite
        assert [s.index for s in specs if s.suite == "EPFL"] == [0, 1]


class TestDeterminism:
    def test_same_config_builds_byte_identical_dirs(self, tmp_path):
        build_shards(TINY, tmp_path / "a")
        build_shards(TINY, tmp_path / "b")
        assert dir_bytes(tmp_path / "a") == dir_bytes(tmp_path / "b")

    def test_workers_match_serial_exactly(self, tmp_path):
        build_shards(TINY, tmp_path / "serial", workers=1)
        build_shards(TINY, tmp_path / "pool", workers=2)
        assert dir_bytes(tmp_path / "serial") == dir_bytes(tmp_path / "pool")

    def test_shard_independent_of_sibling_suites(self):
        """Adding a suite to the config must not disturb existing shards."""
        solo = PipelineConfig(
            suites=(("EPFL", 3),),
            seed=11,
            num_patterns=256,
            max_nodes=200,
            max_levels=50,
            shard_size=2,
        )
        specs = [s for s in plan_shards(TINY) if s.suite == "EPFL"]
        for spec in specs:
            a = generate_shard(TINY, spec)
            b = generate_shard(solo, spec)
            assert [g.name for g in a] == [g.name for g in b]
            for ga, gb in zip(a, b):
                assert np.array_equal(ga.labels, gb.labels)
                assert np.array_equal(ga.edges, gb.edges)

    def test_serial_api_matches_shards(self, tmp_path):
        result = build_shards(TINY, tmp_path / "d")
        on_disk = ShardedCircuitDataset(result.out_dir).suite("ITC99")
        in_memory = generate_suite(TINY, "ITC99")
        assert len(on_disk) == len(in_memory)
        for ga, gb in zip(in_memory, on_disk):
            assert ga.name == gb.name
            assert np.array_equal(ga.node_type, gb.node_type)
            assert np.array_equal(ga.labels, gb.labels)
            assert np.array_equal(ga.skip_edges, gb.skip_edges)


class TestCache:
    def test_second_build_is_cache_hit(self, tmp_path):
        first = build_shards(TINY, tmp_path)
        assert not first.cache_hit
        before = dir_bytes(tmp_path)
        second = build_shards(TINY, tmp_path)
        assert second.cache_hit
        assert dir_bytes(tmp_path) == before
        assert second.manifest == first.manifest

    def test_config_change_invalidates(self, tmp_path):
        build_shards(TINY, tmp_path)
        changed = dataclasses.replace(TINY, num_patterns=512)
        assert not manifest_is_current(tmp_path, changed)
        result = build_shards(changed, tmp_path)
        assert not result.cache_hit
        assert result.manifest["config_hash"] == changed.config_hash()
        # and the rebuilt directory is now current for the new config only
        assert manifest_is_current(tmp_path, changed)
        assert not manifest_is_current(tmp_path, TINY)

    def test_corrupt_shard_forces_rebuild(self, tmp_path):
        result = build_shards(TINY, tmp_path)
        victim = result.shard_paths[0]
        victim.write_bytes(b"garbage")
        rebuilt = build_shards(TINY, tmp_path)
        assert not rebuilt.cache_hit
        assert dir_bytes(tmp_path)[victim.name] != b"garbage"

    def test_missing_shard_forces_rebuild(self, tmp_path):
        result = build_shards(TINY, tmp_path)
        result.shard_paths[-1].unlink()
        assert not manifest_is_current(tmp_path, TINY)
        assert not build_shards(TINY, tmp_path).cache_hit

    def test_verify_hashes_false_skips_content_check(self, tmp_path):
        """Existence-only validation: fast path for huge known-good dirs."""
        result = build_shards(TINY, tmp_path)
        result.shard_paths[0].write_bytes(b"garbage")
        assert build_shards(TINY, tmp_path, verify_hashes=False).cache_hit
        # full validation still catches it
        assert not build_shards(TINY, tmp_path, verify_hashes=True).cache_hit

    def test_force_rebuilds_but_bytes_unchanged(self, tmp_path):
        build_shards(TINY, tmp_path)
        before = dir_bytes(tmp_path)
        result = build_shards(TINY, tmp_path, force=True)
        assert not result.cache_hit
        assert dir_bytes(tmp_path) == before

    def test_stale_generation_shards_removed(self, tmp_path):
        """Rebuilding with fewer circuits leaves no orphan shard files."""
        big = dataclasses.replace(TINY, suites=(("EPFL", 5), ("ITC99", 3)))
        build_shards(big, tmp_path)
        files_before = set(dir_bytes(tmp_path))
        build_shards(TINY, tmp_path)
        files_after = set(dir_bytes(tmp_path))
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        expected = {s["filename"] for s in manifest["shards"]} | {
            "manifest.json"
        }
        assert files_after == expected
        assert "epfl-00002.npz" in files_before
        assert "epfl-00002.npz" not in files_after


class TestShardedDataset:
    def test_streaming_matches_random_access(self, tmp_path):
        result = build_shards(TINY, tmp_path)
        ds = ShardedCircuitDataset(result.out_dir, cache_shards=1)
        assert len(ds) == 6
        streamed = list(ds)
        for k, g in enumerate(streamed):
            g.validate()
            assert ds[k].name == g.name
            assert np.array_equal(ds[k].labels, g.labels)

    def test_batches_cover_everything(self, tmp_path):
        result = build_shards(TINY, tmp_path)
        ds = ShardedCircuitDataset(result.out_dir)
        batches = list(ds.batches(batch_size=4))
        assert sum(b.num_nodes for b in batches) == sum(
            g.num_nodes for g in ds
        )
        with pytest.raises(ValueError):
            list(ds.batches(0))

    def test_shuffled_batches_cover_everything(self, tmp_path):
        result = build_shards(TINY, tmp_path)
        ds = ShardedCircuitDataset(result.out_dir)
        shuffled = list(ds.batches(batch_size=2, seed=1))
        assert sum(b.num_nodes for b in shuffled) == sum(
            g.num_nodes for g in ds
        )
        # deterministic per seed, different across seeds (shard-local)
        again = [b.num_nodes for b in ds.batches(2, seed=1)]
        other = [b.num_nodes for b in ds.batches(2, seed=2)]
        assert [b.num_nodes for b in shuffled] == again
        assert again != other or len(set(again)) == 1

    def test_suite_summaries_match_materialized(self, tmp_path):
        result = build_shards(TINY, tmp_path)
        ds = ShardedCircuitDataset(result.out_dir)
        summaries = ds.suite_summaries()
        for name, stats in summaries.items():
            suite_ds = ds.suite(name)
            assert stats["circuits"] == len(suite_ds)
            assert stats["nodes"] == suite_ds.node_count_range()
            assert stats["levels"] == suite_ds.level_range()

    def test_by_suite_and_materialize(self, tmp_path):
        result = build_shards(TINY, tmp_path)
        ds = ShardedCircuitDataset(result.out_dir)
        suites = ds.by_suite()
        assert set(suites) == {"EPFL", "ITC99"}
        assert sum(len(s) for s in suites.values()) == len(ds)
        assert len(ds.materialize()) == len(ds)
        with pytest.raises(KeyError):
            ds.suite("IWLS")

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest"):
            ShardedCircuitDataset(tmp_path)


class TestExperimentIntegration:
    def test_explicit_data_dir_not_shadowed_by_memory_cache(self, tmp_path):
        """An in-memory build must not satisfy a later on-disk request."""
        from repro.experiments.common import cached_suites, get_scale

        tiny_scale = dataclasses.replace(
            get_scale("smoke"),
            circuits_per_suite=(("EPFL", 2),),
            num_patterns=256,
            max_nodes=200,
            seed=987,
        )
        in_memory = cached_suites(tiny_scale)
        assert not (tmp_path / "smoke-seed987").exists()
        on_disk = cached_suites(tiny_scale, data_dir=tmp_path)
        assert (tmp_path / "smoke-seed987" / "manifest.json").is_file()
        # same circuits either way, and both paths stay memoised
        assert [g.name for g in in_memory["EPFL"]] == [
            g.name for g in on_disk["EPFL"]
        ]
        assert cached_suites(tiny_scale, data_dir=tmp_path) is on_disk
        assert cached_suites(tiny_scale) is in_memory


class TestCli:
    def test_build_and_info(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "ds"
        argv = [
            "dataset", "build", "--out", str(out), "--scale", "smoke",
            "--suite", "EPFL=2", "--suite", "ITC99=2",
            "--patterns", "256", "--shard-size", "2", "--workers", "2",
        ]
        assert main(argv) == 0
        assert "built: 4 circuits" in capsys.readouterr().out
        assert main(argv) == 0
        assert "cache hit" in capsys.readouterr().out
        assert main(["dataset", "info", str(out)]) == 0
        info = capsys.readouterr().out
        assert "circuits:    4" in info
        assert "EPFL" in info and "ITC99" in info

    def test_info_without_manifest(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="manifest"):
            main(["dataset", "info", str(tmp_path)])

    def test_build_bad_suite_override(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="NAME=COUNT"):
            main(["dataset", "build", "--out", str(tmp_path), "--suite",
                  "EPFL"])
