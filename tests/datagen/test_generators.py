"""Functional correctness of every circuit generator.

Each generator is simulated exhaustively and checked against the integer
semantics it claims to implement (adders add, comparators compare, ...).
"""

import numpy as np
import pytest

from repro.datagen import generators as gen

from ..helpers import exhaustive_output_bits
from repro.synth import netlist_to_aig


def truth_table(netlist):
    """outputs as (num_outputs, 2**n_inputs) boolean array."""
    aig = netlist_to_aig(netlist)
    bits = exhaustive_output_bits(aig)
    n = aig.num_pis
    total = 1 << n
    out = np.zeros((aig.num_outputs, total), dtype=bool)
    for k in range(aig.num_outputs):
        arr = bits[k]
        for p in range(total):
            out[k, p] = bool((int(arr[p // 64]) >> (p % 64)) & 1)
    return out


def input_ints(netlist, prefix, width):
    """Per-pattern integer value of the input vector ``prefix0..prefix{w-1}``."""
    names = netlist.inputs
    n = len(names)
    total = 1 << n
    vals = np.zeros(total, dtype=np.int64)
    for k in range(width):
        pos = names.index(f"{prefix}{k}")
        for p in range(total):
            if (p >> pos) & 1:
                vals[p] += 1 << k
    return vals


def output_ints(table, count):
    """First ``count`` output rows interpreted as a little-endian integer."""
    vals = np.zeros(table.shape[1], dtype=np.int64)
    for k in range(count):
        vals += table[k].astype(np.int64) << k
    return vals


class TestArithmetic:
    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_ripple_adder(self, width):
        nl = gen.ripple_adder(width)
        table = truth_table(nl)
        a = input_ints(nl, "a", width)
        b = input_ints(nl, "b", width)
        got = output_ints(table, width + 1)  # sum bits + carry
        np.testing.assert_array_equal(got, a + b)

    def test_ripple_adder_with_carry_in(self):
        nl = gen.ripple_adder(3, with_carry_in=True)
        table = truth_table(nl)
        a = input_ints(nl, "a", 3)
        b = input_ints(nl, "b", 3)
        cin = input_ints(nl, "cin", 0)  # zero: no such bits
        names = nl.inputs
        pos = names.index("cin")
        total = 1 << len(names)
        cin = np.array([(p >> pos) & 1 for p in range(total)], dtype=np.int64)
        got = output_ints(table, 4)
        np.testing.assert_array_equal(got, a + b + cin)

    @pytest.mark.parametrize("width,block", [(4, 2), (6, 3)])
    def test_carry_select_adder(self, width, block):
        nl = gen.carry_select_adder(width, block)
        table = truth_table(nl)
        a = input_ints(nl, "a", width)
        b = input_ints(nl, "b", width)
        got = output_ints(table, width + 1)
        np.testing.assert_array_equal(got, a + b)

    @pytest.mark.parametrize("wa,wb", [(2, 2), (3, 2), (3, 3)])
    def test_multiplier(self, wa, wb):
        nl = gen.multiplier(wa, wb)
        table = truth_table(nl)
        a = input_ints(nl, "a", wa)
        b = input_ints(nl, "b", wb)
        got = output_ints(table, wa + wb)
        np.testing.assert_array_equal(got, a * b)

    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_squarer(self, width):
        nl = gen.squarer(width)
        table = truth_table(nl)
        a = input_ints(nl, "a", width)
        got = output_ints(table, len(nl.outputs))
        np.testing.assert_array_equal(got, a * a)

    @pytest.mark.parametrize("width", [2, 4])
    def test_incrementer(self, width):
        nl = gen.incrementer(width)
        table = truth_table(nl)
        x = input_ints(nl, "x", width)
        got = output_ints(table, width)
        np.testing.assert_array_equal(got, (x + 1) % (1 << width))

    @pytest.mark.parametrize("width", [3, 4])
    def test_alu(self, width):
        nl = gen.alu(width)
        table = truth_table(nl)
        a = input_ints(nl, "a", width)
        b = input_ints(nl, "b", width)
        names = nl.inputs
        total = 1 << len(names)
        op0 = np.array([(p >> names.index("op0")) & 1 for p in range(total)])
        op1 = np.array([(p >> names.index("op1")) & 1 for p in range(total)])
        got = output_ints(table, width)
        mask = (1 << width) - 1
        expect = np.where(
            op1 == 0,
            np.where(op0 == 0, (a + b) & mask, a & b),
            np.where(op0 == 0, a | b, a ^ b),
        )
        np.testing.assert_array_equal(got, expect)
        # zero flag
        np.testing.assert_array_equal(table[width], got == 0)


class TestControl:
    @pytest.mark.parametrize("width", [2, 3])
    def test_comparator(self, width):
        nl = gen.comparator(width)
        table = truth_table(nl)
        a = input_ints(nl, "a", width)
        b = input_ints(nl, "b", width)
        np.testing.assert_array_equal(table[0], a == b)
        np.testing.assert_array_equal(table[1], a < b)

    @pytest.mark.parametrize("n", [3, 5])
    def test_priority_arbiter(self, n):
        nl = gen.priority_arbiter(n)
        table = truth_table(nl)
        names = nl.inputs
        total = 1 << len(names)
        req = np.array(
            [[(p >> names.index(f"req{k}")) & 1 for p in range(total)] for k in range(n)]
        )
        for k in range(n):
            expect = req[k].astype(bool)
            for j in range(k):
                expect &= ~req[j].astype(bool)
            np.testing.assert_array_equal(table[k], expect, err_msg=f"grant{k}")
        np.testing.assert_array_equal(table[n], req.any(axis=0))

    def test_round_robin_arbiter_one_hot_pointer(self):
        n = 3
        nl = gen.round_robin_arbiter(n)
        table = truth_table(nl)
        names = nl.inputs
        total = 1 << len(names)
        for p in range(total):
            reqs = [(p >> names.index(f"req{k}")) & 1 for k in range(n)]
            ptr = [(p >> names.index(f"ptr{k}")) & 1 for k in range(n)]
            if sum(ptr) != 1:
                continue  # defined for one-hot pointers only
            start = ptr.index(1)
            winner = None
            for j in range(n):
                if reqs[(start + j) % n]:
                    winner = (start + j) % n
                    break
            for k in range(n):
                assert table[k, p] == (winner == k), (p, k)

    @pytest.mark.parametrize("bits", [2, 3])
    def test_decoder(self, bits):
        nl = gen.decoder(bits)
        table = truth_table(nl)
        names = nl.inputs
        total = 1 << len(names)
        for p in range(total):
            en = (p >> names.index("en")) & 1
            code = sum(
                ((p >> names.index(f"s{k}")) & 1) << k for k in range(bits)
            )
            for out in range(1 << bits):
                assert table[out, p] == (bool(en) and out == code)

    @pytest.mark.parametrize("bits", [2, 3])
    def test_mux_tree(self, bits):
        nl = gen.mux_tree(bits)
        table = truth_table(nl)
        names = nl.inputs
        total = 1 << len(names)
        for p in range(total):
            code = sum(
                ((p >> names.index(f"s{k}")) & 1) << k for k in range(bits)
            )
            selected = (p >> names.index(f"d{code}")) & 1
            assert table[0, p] == bool(selected)

    def test_barrel_shifter_rotates(self):
        nl = gen.barrel_shifter(2)  # 4-bit word
        table = truth_table(nl)
        names = nl.inputs
        total = 1 << len(names)
        for p in range(total):
            word = [(p >> names.index(f"d{k}")) & 1 for k in range(4)]
            amount = sum(
                ((p >> names.index(f"sh{k}")) & 1) << k for k in range(2)
            )
            rotated = [word[(k - amount) % 4] for k in range(4)]
            got = [bool(table[k, p]) for k in range(4)]
            assert got == [bool(x) for x in rotated], (word, amount)


class TestCodes:
    @pytest.mark.parametrize("width", [3, 5, 8])
    def test_parity(self, width):
        nl = gen.parity(width)
        table = truth_table(nl)
        names = nl.inputs
        total = 1 << len(names)
        expect = np.array(
            [bin(p).count("1") % 2 == 1 for p in range(total)], dtype=bool
        )
        np.testing.assert_array_equal(table[0], expect)

    @pytest.mark.parametrize("width", [3, 4])
    def test_gray_to_binary(self, width):
        nl = gen.gray_to_binary(width)
        table = truth_table(nl)
        g = input_ints(nl, "g", width)
        got = output_ints(table, width)
        # standard conversion: repeated xor-with-shift folds the prefix xor
        ref = g.copy()
        shift = 1
        while shift < width:
            ref ^= ref >> shift
            shift <<= 1
        np.testing.assert_array_equal(got, ref & ((1 << width) - 1))

    @pytest.mark.parametrize("width", [3, 5])
    def test_majority_voter(self, width):
        nl = gen.majority_voter(width)
        table = truth_table(nl)
        names = nl.inputs
        total = 1 << len(names)
        expect = np.array(
            [bin(p).count("1") > width // 2 for p in range(total)], dtype=bool
        )
        np.testing.assert_array_equal(table[0], expect)

    def test_majority_needs_odd_width(self):
        with pytest.raises(ValueError, match="odd"):
            gen.majority_voter(4)

    def test_crc_reference(self):
        """CRC generator must match a bit-serial software CRC."""
        data_width, crc_width, poly = 4, 8, 0x07
        nl = gen.crc(data_width, polynomial=poly, crc_width=crc_width)
        table = truth_table(nl)
        names = nl.inputs
        total = 1 << len(names)
        for p in range(total):
            data = [(p >> names.index(f"d{k}")) & 1 for k in range(data_width)]
            state = sum(
                ((p >> names.index(f"c{k}")) & 1) << k for k in range(crc_width)
            )
            for bit in data:
                fb = bit ^ ((state >> (crc_width - 1)) & 1)
                state = (state << 1) & ((1 << crc_width) - 1)
                if fb:
                    # bit 0 always takes the feedback; taps k>0 xor with it
                    state ^= (poly & ~1) | 1
            got = sum(int(table[k, p]) << k for k in range(crc_width))
            assert got == state, p


class TestRandomControl:
    def test_valid_and_deterministic(self):
        a = gen.random_control(np.random.default_rng(5), 6, 40, 3)
        b = gen.random_control(np.random.default_rng(5), 6, 40, 3)
        a.validate()
        from repro.aig import bench

        assert bench.dumps(a) == bench.dumps(b)

    def test_respects_sizes(self):
        nl = gen.random_control(np.random.default_rng(1), 7, 55, 4)
        assert len(nl.inputs) == 7
        assert nl.num_gates() == 55
        assert len(nl.outputs) == 4


class TestProcessorLike:
    def test_flags_consistent(self):
        width = 3
        nl = gen.processor_like(width)
        table = truth_table(nl)
        result = output_ints(table, width)
        zero_flag = table[width]
        np.testing.assert_array_equal(zero_flag, result == 0)

    def test_catalog_all_valid(self):
        for name, (fn, kwargs) in gen.GENERATOR_CATALOG.items():
            nl = fn(**kwargs)
            nl.validate()
            assert nl.num_gates() > 0, name
