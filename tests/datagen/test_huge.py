"""The streaming huge-circuit generator (scalable ingest path).

Checks the properties the streaming pipeline leans on: per-level chunks
with strictly topological edges, byte-determinism that depends only on
the parameters (each level draws from ``default_rng([seed, level])``),
and labels that follow the independence-propagation recurrence exactly.
"""

import numpy as np
import pytest

from repro.datagen.generators import huge_circuit, iter_huge_circuit_levels


def materialise(**kwargs):
    chunks = list(iter_huge_circuit_levels(**kwargs))
    return (
        np.concatenate([c[0] for c in chunks]),
        np.concatenate([c[1] for c in chunks]),
        np.concatenate([c[2] for c in chunks]),
        np.concatenate([c[3] for c in chunks]),
    )


class TestStream:
    def test_counts_and_levels(self):
        types, levels, labels, edges = materialise(
            num_gates=3000, seed=0, width=128
        )
        assert len(types) == 3000
        assert len(levels) == 3000
        assert len(labels) == 3000
        # level 0 = PIs (type 0), then monotone per-level chunks
        assert (types[:128] == 0).all()
        assert (levels[:128] == 0).all()
        assert (np.diff(levels) >= 0).all()

    def test_edges_strictly_topological(self):
        _, _, _, edges = materialise(num_gates=3000, seed=0, width=128)
        assert (edges[:, 0] < edges[:, 1]).all()
        assert (edges[:, 0] >= 0).all()
        assert (edges[:, 1] < 3000).all()

    def test_fanin_counts_match_gate_types(self):
        types, _, _, edges = materialise(num_gates=3000, seed=0, width=128)
        indeg = np.bincount(edges[:, 1], minlength=len(types))
        assert (indeg[types == 0] == 0).all()  # PIs
        assert (indeg[types == 1] == 2).all()  # AND
        assert (indeg[types == 2] == 1).all()  # NOT

    def test_labels_follow_independence_propagation(self):
        types, _, labels, edges = materialise(
            num_gates=2000, seed=3, width=64
        )
        # recompute in float32, exactly as the generator does — deep AND
        # chains underflow in float32, so a float64 oracle would diverge
        one = np.float32(1.0)
        for nid in np.flatnonzero(types != 0):
            fanins = edges[edges[:, 1] == nid, 0]
            if types[nid] == 2:
                expected = one - labels[fanins[0]]
            else:
                expected = labels[fanins[0]] * labels[fanins[1]]
            assert labels[nid] == np.float32(expected), nid

    def test_deterministic(self):
        a = materialise(num_gates=2000, seed=5, width=64)
        b = materialise(num_gates=2000, seed=5, width=64)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_seed_changes_stream(self):
        a = materialise(num_gates=2000, seed=0, width=64)
        b = materialise(num_gates=2000, seed=1, width=64)
        assert not np.array_equal(a[3], b[3])

    def test_prefix_property_on_complete_levels(self):
        # two sizes that are exact width multiples: the smaller stream
        # is a byte-for-byte prefix of the larger (per-level rng keys
        # make the bytes independent of total size)
        small = materialise(num_gates=640, seed=2, width=64)
        big = materialise(num_gates=1280, seed=2, width=64)
        for s, b in zip(small, big):
            np.testing.assert_array_equal(s, b[: len(s)])

    def test_fanin_window_bounds_reach(self):
        _, _, _, edges = materialise(
            num_gates=4000, seed=0, width=64, fanin_window=100
        )
        # the second fanin never reaches further back than the window
        # (+width slack: fan_a comes from the whole previous level)
        reach = edges[:, 1] - edges[:, 0]
        assert reach.max() <= 100 + 64

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"num_gates": 10, "num_pis": 10}, "num_gates"),
            ({"num_gates": 100, "width": 0, "num_pis": 8}, "width"),
            ({"num_gates": 100, "num_pis": 0}, "num_pis"),
            ({"num_gates": 100, "width": 8, "not_frac": 1.5}, "not_frac"),
            ({"num_gates": 100, "width": 8, "fanin_window": 0},
             "fanin_window"),
        ],
    )
    def test_bad_arguments_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            list(iter_huge_circuit_levels(**kwargs))


class TestMaterialised:
    def test_huge_circuit_is_a_valid_graph(self):
        g = huge_circuit(3000, seed=0, width=128)
        g.validate()
        assert g.num_nodes == 3000
        assert g.name == "huge_3000g_s0"
        assert len(g.skip_edges) == 0

    def test_matches_the_stream(self):
        g = huge_circuit(2000, seed=4, width=64)
        types, levels, labels, edges = materialise(
            num_gates=2000, seed=4, width=64
        )
        np.testing.assert_array_equal(g.node_type, types)
        np.testing.assert_array_equal(g.levels, levels)
        np.testing.assert_array_equal(g.labels, labels)
        np.testing.assert_array_equal(g.edges, edges)
