"""Tests for cone extraction: extracted logic must match the original."""

import numpy as np
import pytest

from repro.datagen import extract_cone, extract_subcircuits
from repro.datagen.generators import multiplier, ripple_adder
from repro.sim import exhaustive_patterns, output_values, simulate_aig
from repro.synth import synthesize

from ..helpers import random_netlist


def _check_cone_equivalence(aig, roots, max_nodes=None):
    """Simulate original and cone; cone outputs must equal root var values."""
    cone = extract_cone(aig, roots, max_nodes=max_nodes)
    pats = exhaustive_patterns(aig.num_pis)
    full_vals = simulate_aig(aig, pats)

    # cone PIs correspond to boundary vars of the original in sorted order;
    # reconstruct that mapping by re-deriving the boundary.
    from repro.datagen.extraction import extract_cone as _  # noqa: F401

    # feed the cone with the original's simulated values of its boundary
    # variables: the cone's PI order is the sorted boundary var order.
    # Recompute boundary the same way extract_cone does.
    levels = aig.levels()
    # replicate kept-set: budget-free means the full cone
    # (simpler: drive cone PIs by matching on function: cone has num_pis
    # inputs; we recover boundary by running extraction internals again)
    boundary = _boundary_vars(aig, roots, max_nodes)
    cone_inputs = full_vals[boundary]
    cone_vals = simulate_aig(cone, cone_inputs)
    cone_out = output_values(cone, cone_vals)
    total = 1 << aig.num_pis
    mask = np.uint64((1 << min(total, 64)) - 1) if total < 64 else None
    for k, root in enumerate(sorted(set(roots))):
        expect = full_vals[root]
        got = cone_out[k]
        if mask is not None:
            expect, got = expect & mask, got & mask
        np.testing.assert_array_equal(got, expect)


def _boundary_vars(aig, roots, max_nodes):
    """Mirror of extract_cone's kept/boundary computation (for testing)."""
    import heapq

    levels = aig.levels()
    base = 1 + aig.num_pis
    in_cone = np.zeros(aig.num_vars, dtype=bool)
    heap = [(-int(levels[v]), int(v)) for v in set(roots)]
    heapq.heapify(heap)
    budget = max_nodes if max_nodes is not None else aig.num_vars
    kept = []
    while heap and len(kept) < budget:
        _, v = heapq.heappop(heap)
        if in_cone[v]:
            continue
        in_cone[v] = True
        kept.append(v)
        a, b = (int(x) for x in aig.ands[v - base])
        for lit in (a, b):
            u = lit >> 1
            if aig.is_and_var(u) and not in_cone[u]:
                heapq.heappush(heap, (-int(levels[u]), u))
    boundary, seen = [], set()
    for v in sorted(kept):
        a, b = (int(x) for x in aig.ands[v - base])
        for lit in (a, b):
            u = lit >> 1
            if not in_cone[u] and u not in seen:
                seen.add(u)
                boundary.append(u)
    return sorted(boundary)


class TestExtractCone:
    def test_full_cone_equivalent(self):
        aig = synthesize(ripple_adder(4))
        root = aig.num_vars - 1  # deepest AND
        _check_cone_equivalence(aig, [root])

    def test_truncated_cone_equivalent(self):
        aig = synthesize(multiplier(4))
        root = aig.num_vars - 1
        _check_cone_equivalence(aig, [root], max_nodes=10)

    def test_multiple_roots(self):
        aig = synthesize(ripple_adder(4))
        roots = [aig.num_vars - 1, aig.num_vars - 3]
        _check_cone_equivalence(aig, roots, max_nodes=20)

    def test_random_circuits(self):
        rng = np.random.default_rng(2)
        for _ in range(6):
            aig = synthesize(random_netlist(rng, num_inputs=5, num_gates=25))
            if aig.num_ands < 4:
                continue
            root = aig.num_vars - 1
            _check_cone_equivalence(aig, [root], max_nodes=6)

    def test_rejects_non_and_roots(self):
        aig = synthesize(ripple_adder(3))
        with pytest.raises(ValueError, match="not an AND"):
            extract_cone(aig, [1])  # a PI var

    def test_budget_respected(self):
        aig = synthesize(multiplier(4))
        cone = extract_cone(aig, [aig.num_vars - 1], max_nodes=8)
        assert cone.num_ands <= 8


class TestExtractSubcircuits:
    def test_sizes_in_window(self):
        aig = synthesize(multiplier(6))
        rng = np.random.default_rng(3)
        subs = extract_subcircuits(aig, rng, count=5, min_nodes=30, max_nodes=200)
        assert subs
        for s in subs:
            size = s.to_gate_graph().num_nodes
            assert 30 <= size <= 200

    def test_empty_for_trivial_aig(self):
        from repro.aig import AIGBuilder

        b = AIGBuilder(num_pis=2)
        b.add_output(b.pi_lit(0))
        assert extract_subcircuits(b.build(), np.random.default_rng(0), 3) == []

    def test_deterministic_with_seed(self):
        aig = synthesize(multiplier(5))
        a = extract_subcircuits(aig, np.random.default_rng(7), 3, 20, 300)
        b = extract_subcircuits(aig, np.random.default_rng(7), 3, 20, 300)
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert np.array_equal(x.ands, y.ands)
