"""Tests for the benchmark-suite pools and dataset building."""

import numpy as np
import pytest

from repro.datagen import (
    SUITE_NAMES,
    TABLE1_PAPER_ROWS,
    build_all_suites,
    build_suite_dataset,
    suite_pool,
)


class TestPools:
    @pytest.mark.parametrize("name", SUITE_NAMES)
    def test_pool_yields_valid_netlists(self, name):
        pool = suite_pool(name, np.random.default_rng(0))
        for _ in range(5):
            nl = next(pool)
            nl.validate()
            assert nl.num_gates() > 0

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suite"):
            suite_pool("NONSUCH", np.random.default_rng(0))

    def test_paper_rows_cover_all_suites(self):
        assert set(TABLE1_PAPER_ROWS) == set(SUITE_NAMES)


class TestBuildSuiteDataset:
    def test_count_and_window(self):
        ds = build_suite_dataset(
            "IWLS", 5, seed=3, num_patterns=1024, min_nodes=30, max_nodes=500
        )
        assert len(ds) == 5
        lo, hi = ds.node_count_range()
        assert lo >= 30 and hi <= 500

    def test_depth_cap_respected(self):
        ds = build_suite_dataset(
            "ITC99", 4, seed=1, num_patterns=1024, max_levels=40
        )
        _, hi = ds.level_range()
        assert hi <= 40

    def test_labels_are_probabilities(self):
        ds = build_suite_dataset("EPFL", 3, seed=0, num_patterns=1024)
        for g in ds:
            assert (g.labels >= 0).all() and (g.labels <= 1).all()
            g.validate()

    def test_deterministic(self):
        a = build_suite_dataset("OpenCores", 3, seed=9, num_patterns=512)
        b = build_suite_dataset("OpenCores", 3, seed=9, num_patterns=512)
        for ga, gb in zip(a, b):
            np.testing.assert_array_equal(ga.labels, gb.labels)
            np.testing.assert_array_equal(ga.edges, gb.edges)

    def test_skip_edges_toggle(self):
        with_skip = build_suite_dataset(
            "EPFL", 2, seed=4, num_patterns=512, with_skip_edges=True
        )
        without = build_suite_dataset(
            "EPFL", 2, seed=4, num_patterns=512, with_skip_edges=False
        )
        assert sum(len(g.skip_edges) for g in with_skip) > 0
        assert sum(len(g.skip_edges) for g in without) == 0

    def test_build_all_suites(self):
        out = build_all_suites(
            {"EPFL": 2, "ITC99": 2}, seed=0, num_patterns=512
        )
        assert set(out) == {"EPFL", "ITC99"}
        assert all(len(ds) == 2 for ds in out.values())
