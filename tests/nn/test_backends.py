"""Tests for the pluggable GEMM backend seam (repro.nn.backends)."""

import numpy as np
import pytest

from repro.nn import backends
from repro.nn.backends import (
    BACKEND_ENV_VAR,
    KernelBackend,
    KernelBackendError,
    NumpyBackend,
    ThreadedBackend,
    available_backends,
    get_backend,
    matmul,
    set_backend,
    use_backend,
)


@pytest.fixture(autouse=True)
def _restore_backend():
    previous = backends._active
    yield
    backends._active = previous


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        assert "numpy" in names and "threaded" in names

    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        backends._active = None
        assert get_backend().name == "numpy"

    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "threaded")
        backends._active = None
        assert get_backend().name == "threaded"

    def test_unknown_env_backend_raises_named_error(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "cuda")
        backends._active = None
        with pytest.raises(KernelBackendError) as err:
            get_backend()
        message = str(err.value)
        assert "cuda" in message
        for name in available_backends():
            assert name in message

    def test_unknown_set_backend_raises(self):
        with pytest.raises(KernelBackendError, match="no-such-backend"):
            set_backend("no-such-backend")

    def test_use_backend_restores_on_error(self):
        set_backend("numpy")
        with pytest.raises(RuntimeError):
            with use_backend("threaded"):
                assert get_backend().name == "threaded"
                raise RuntimeError("boom")
        assert get_backend().name == "numpy"

    def test_register_custom_backend(self):
        class Doubling(KernelBackend):
            name = "doubling-test"

            def matmul(self, a, b):
                return 2.0 * np.matmul(a, b)

        backends.register_backend(Doubling())
        try:
            assert "doubling-test" in available_backends()
            with use_backend("doubling-test"):
                out = matmul(np.eye(2, dtype=np.float32),
                             np.eye(2, dtype=np.float32))
            np.testing.assert_allclose(out, 2.0 * np.eye(2))
        finally:
            backends._REGISTRY.pop("doubling-test", None)


class TestThreadedMatchesNumpy:
    SHAPES = [
        ((3, 4), (4, 5)),          # small: below the split threshold
        ((5000, 8), (8, 16)),      # tall: row-chunked across the pool
        ((16,), (16, 4)),          # vector @ matrix
        ((2, 5, 7), (7, 3)),       # stacked 3-D falls through
    ]

    @pytest.mark.parametrize("sa,sb", SHAPES, ids=[str(s) for s, _ in SHAPES])
    def test_matches_numpy(self, sa, sb):
        rng = np.random.default_rng(0)
        a = rng.standard_normal(sa).astype(np.float32)
        b = rng.standard_normal(sb).astype(np.float32)
        # force the pool path even on single-core machines
        threaded = ThreadedBackend(num_threads=3, min_rows=64)
        np.testing.assert_allclose(
            threaded.matmul(a, b), NumpyBackend().matmul(a, b),
            rtol=1e-5, atol=1e-6,
        )

    def test_transposed_view_input(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((32, 4096)).astype(np.float32)
        b = rng.standard_normal((32, 8)).astype(np.float32)
        threaded = ThreadedBackend(num_threads=2, min_rows=128)
        np.testing.assert_allclose(
            threaded.matmul(a.T, b), np.matmul(a.T, b),
            rtol=1e-5, atol=1e-5,
        )

    def test_numpy_backend_byte_deterministic(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((64, 32)).astype(np.float32)
        b = rng.standard_normal((32, 48)).astype(np.float32)
        with use_backend("numpy"):
            first = matmul(a, b)
            second = matmul(a, b)
        assert first.tobytes() == second.tobytes()
