"""Tests for the compiled segment/GRU/attention kernels.

Two angles on every kernel: finite-difference gradcheck, and equivalence
against the pre-fast-path reference ops (``np.add.at``/``np.maximum.at``
reductions, the expression-by-expression GRU) across empty-segment,
single-edge and large-fan-in edge cases.
"""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn.kernels import (
    SegmentLayout,
    attention_backward_np,
    attention_forward_np,
    conv_sum_backward_np,
    conv_sum_forward_np,
    deepset_backward_np,
    deepset_forward_np,
    gated_sum_backward_np,
    gated_sum_forward_np,
    gru_backward_np,
    gru_forward_np,
    gru_pre_backward_np,
    gru_pre_forward_np,
    segment_max_np,
    segment_present_sum,
    segment_softmax_np,
    segment_sum_np,
)
from repro.nn.modules import GRUCell

from .gradcheck import check_gradients

# ---------------------------------------------------------------------------
# reference implementations (the ops the kernels replaced)
# ---------------------------------------------------------------------------


def ref_segment_sum(x, ids, num_segments):
    out = np.zeros((num_segments,) + x.shape[1:], dtype=np.float32)
    np.add.at(out, ids, x)
    return out


def ref_segment_max(x, ids, num_segments):
    out = np.full(num_segments, -np.inf, dtype=np.float32)
    np.maximum.at(out, ids, x)
    return out


def ref_segment_softmax(s, ids, num_segments):
    seg_max = ref_segment_max(s, ids, num_segments)
    exps = np.exp(s - seg_max[ids])
    denom = ref_segment_sum(exps, ids, num_segments)
    return exps / denom[ids]


def reference_gru(cell, x, h):
    """The original ~15-node composite GRU formulation."""
    d = cell.hidden_size
    gi = (x @ cell.w_ih + cell.b_ih).data
    gh = (h @ cell.w_hh + cell.b_hh).data
    r = 1.0 / (1.0 + np.exp(-(gi[:, :d] + gh[:, :d])))
    z = 1.0 / (1.0 + np.exp(-(gi[:, d:2 * d] + gh[:, d:2 * d])))
    n = np.tanh(gi[:, 2 * d:] + r * gh[:, 2 * d:])
    return (1.0 - z) * n + z * h.data


#: (name, segment_ids, num_segments) covering the structural edge cases
SEGMENT_CASES = [
    ("empty", np.zeros(0, np.int64), 3),
    ("single_edge", np.array([1]), 3),
    ("empty_segments_interleaved", np.array([0, 0, 4, 2, 4]), 6),
    ("large_fan_in", np.zeros(500, np.int64), 2),
    ("all_distinct", np.arange(7), 7),
    ("unsorted", np.array([3, 0, 2, 0, 3, 1, 3]), 4),
]


@pytest.mark.parametrize(
    "name,ids,num", SEGMENT_CASES, ids=[c[0] for c in SEGMENT_CASES]
)
class TestSegmentKernelEquivalence:
    def test_sum_matches_add_at(self, name, ids, num):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(ids.size, 3)).astype(np.float32)
        layout = SegmentLayout(ids, num)
        # reduceat associates pairwise where add.at is strictly
        # sequential, so agreement is to float32 round-off, not bitwise
        np.testing.assert_allclose(
            segment_sum_np(x, layout),
            ref_segment_sum(x, ids, num),
            rtol=1e-6, atol=1e-6,
        )

    def test_max_matches_maximum_at(self, name, ids, num):
        rng = np.random.default_rng(2)
        s = rng.normal(size=ids.size).astype(np.float32)
        layout = SegmentLayout(ids, num)
        np.testing.assert_array_equal(
            segment_max_np(s, layout), ref_segment_max(s, ids, num)
        )

    def test_softmax_matches_reference(self, name, ids, num):
        # zero edges included: the kernel defines the empty-segment
        # result as the empty float32 array — zero rows, never NaN
        rng = np.random.default_rng(3)
        s = rng.normal(size=ids.size).astype(np.float32)
        layout = SegmentLayout(ids, num)
        out = segment_softmax_np(s, layout)
        assert out.shape == (ids.size,)
        assert out.dtype == np.float32
        assert not np.isnan(out).any()
        np.testing.assert_allclose(
            out, ref_segment_softmax(s, ids, num), rtol=1e-6
        )

    def test_present_sum_touches_only_present(self, name, ids, num):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(ids.size, 2)).astype(np.float32)
        layout = SegmentLayout(ids, num)
        present, sums = segment_present_sum(x, layout)
        assert sorted(set(present.tolist())) == sorted(set(ids.tolist()))
        dense = segment_sum_np(x, layout)
        np.testing.assert_array_equal(dense[present], sums)


class TestSegmentLayout:
    @pytest.mark.parametrize(
        "name,ids,num", SEGMENT_CASES, ids=[c[0] for c in SEGMENT_CASES]
    )
    def test_counts_match_bincount(self, name, ids, num):
        layout = SegmentLayout(ids, num)
        np.testing.assert_array_equal(
            layout.counts, np.bincount(ids, minlength=num).astype(np.float32)
        )
        # cached: same array object on the second access
        assert layout.counts is layout.counts

    def test_rejects_out_of_range_ids(self):
        with pytest.raises(ValueError, match="segment ids"):
            SegmentLayout(np.array([0, 5]), 3)
        with pytest.raises(ValueError, match="segment ids"):
            SegmentLayout(np.array([-1]), 3)



class TestFusedGRU:
    def _data(self, n=3, din=4, d=5, seed=0):
        rng = np.random.default_rng(seed)
        return (
            rng.normal(size=(n, din)).astype(np.float32),
            rng.normal(size=(n, d)).astype(np.float32),
        )

    def test_forward_matches_reference(self):
        x_np, h_np = self._data()
        cell = GRUCell(4, 5, np.random.default_rng(7))
        out = cell(Tensor(x_np), Tensor(h_np))
        np.testing.assert_allclose(
            out.data,
            reference_gru(cell, Tensor(x_np), Tensor(h_np)),
            rtol=1e-6, atol=1e-7,
        )

    def test_gradcheck_all_inputs_and_params(self):
        mix = np.linspace(0.5, 1.5, 3 * 5).reshape(3, 5).astype(np.float32)

        def build(params):
            x, h, w_ih, w_hh, b_ih, b_hh = params
            cell = GRUCell.__new__(GRUCell)
            cell.input_size, cell.hidden_size = 4, 5
            cell.w_ih, cell.w_hh, cell.b_ih, cell.b_hh = w_ih, w_hh, b_ih, b_hh
            return (cell(x, h) * Tensor(mix)).sum()

        check_gradients(
            build,
            [(3, 4), (3, 5), (4, 15), (5, 15), (15,), (15,)],
            low=0.05, high=0.6,
        )

    def test_hidden_side_params_get_grads_when_input_side_frozen(self):
        # regression: the fused backward must not gate w_hh/b_hh grads on
        # the input-side parameters' requires_grad
        x_np, h_np = self._data()
        cell = GRUCell(4, 5, np.random.default_rng(11))
        cell.w_ih.requires_grad = False
        cell.b_ih.requires_grad = False
        cell(Tensor(x_np), Tensor(h_np)).sum().backward()
        assert cell.w_hh.grad is not None
        assert cell.b_hh.grad is not None
        assert cell.w_ih.grad is None and cell.b_ih.grad is None

    def test_saved_activations_independent_of_later_calls(self):
        # two forwards from the same cell must not share saved state
        x1, h1 = self._data(seed=1)
        x2, h2 = self._data(seed=2)
        cell = GRUCell(4, 5, np.random.default_rng(3))
        out1 = cell(Tensor(x1), Tensor(h1, requires_grad=True))
        cell(Tensor(x2), Tensor(h2))
        expect = reference_gru(cell, Tensor(x1), Tensor(h1))
        np.testing.assert_allclose(out1.data, expect, rtol=1e-6)


class TestFusedAttention:
    def _case(self, num_edges=7, num_targets=3, dim=4, attr_dim=2, seed=0):
        rng = np.random.default_rng(seed)
        ids = np.sort(rng.integers(0, num_targets, size=num_edges))
        return (
            rng.normal(size=(num_edges, dim)).astype(np.float32),
            rng.normal(size=(num_targets, dim)).astype(np.float32),
            rng.normal(size=(dim, 1)).astype(np.float32),
            rng.normal(size=(dim, 1)).astype(np.float32),
            rng.normal(size=(attr_dim, 1)).astype(np.float32),
            rng.normal(size=(num_edges, attr_dim)).astype(np.float32),
            SegmentLayout(ids, num_targets),
        )

    def test_forward_matches_composite_formulation(self):
        h_src, q, wq, wk, we, attr, layout = self._case()
        ids = layout.segment_ids
        m, alpha = attention_forward_np(h_src, q, wq, wk, we, attr, layout)
        scores = (
            (q @ wq).reshape(-1)[ids]
            + (h_src @ wk).reshape(-1)
            + (attr @ we).reshape(-1)
        )
        expect_alpha = ref_segment_softmax(scores, ids, layout.num_segments)
        np.testing.assert_allclose(alpha, expect_alpha, rtol=1e-6)
        expect_m = ref_segment_sum(
            h_src * expect_alpha[:, None], ids, layout.num_segments
        )
        np.testing.assert_allclose(m, expect_m, rtol=1e-5, atol=1e-7)

    def test_backward_matches_finite_differences(self):
        h_src, q, wq, wk, we, attr, layout = self._case()
        dm = np.linspace(-1, 1, q.size).reshape(q.shape).astype(np.float32)

        def value(h_src=h_src, q=q, wq=wq, wk=wk, we=we):
            m, _ = attention_forward_np(h_src, q, wq, wk, we, attr, layout)
            return float((m.astype(np.float64) * dm).sum())

        _, alpha = attention_forward_np(h_src, q, wq, wk, we, attr, layout)
        dh, dq, dwq, dwk, dwe = attention_backward_np(
            dm, h_src, q, wq, wk, attr, alpha, layout, need_edge=True
        )
        eps = 1e-2
        for arr, grad in ((h_src, dh), (q, dq), (wq, dwq), (wk, dwk),
                          (we, dwe)):
            num = np.zeros_like(arr, dtype=np.float64)
            flat, nflat = arr.reshape(-1), num.reshape(-1)
            for i in range(flat.size):
                orig = flat[i]
                flat[i] = orig + eps
                fp = value()
                flat[i] = orig - eps
                fm = value()
                flat[i] = orig
                nflat[i] = (fp - fm) / (2 * eps)
            np.testing.assert_allclose(grad, num, atol=2e-2, rtol=8e-2)

    def test_empty_segments_get_zero_message(self):
        h_src, q, wq, wk, we, attr, layout = self._case()
        # add two extra targets nobody feeds
        layout2 = SegmentLayout(layout.segment_ids, layout.num_segments + 2)
        q2 = np.concatenate([q, np.ones((2, q.shape[1]), np.float32)])
        m, _ = attention_forward_np(h_src, q2, wq, wk, we, attr, layout2)
        np.testing.assert_array_equal(m[-2:], 0.0)


def _finite_difference_check(value, pairs, eps=1e-2, atol=2e-2, rtol=8e-2):
    """Central-difference check of closed-form gradients.

    ``value()`` must read each array in ``pairs`` by reference (entries
    are mutated in place); ``pairs`` is ``[(array, analytic_grad), ...]``.
    """
    for arr, grad in pairs:
        num = np.zeros_like(arr, dtype=np.float64)
        flat, nflat = arr.reshape(-1), num.reshape(-1)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            fp = value()
            flat[i] = orig - eps
            fm = value()
            flat[i] = orig
            nflat[i] = (fp - fm) / (2 * eps)
        np.testing.assert_allclose(grad, num, atol=atol, rtol=rtol)


#: the segment structures the fused aggregator kernels are checked on:
#: duplicates, gaps (empty segments) and zero edges
AGG_CASES = [c for c in SEGMENT_CASES if c[0] != "large_fan_in"]


@pytest.mark.parametrize(
    "name,ids,num", AGG_CASES, ids=[c[0] for c in AGG_CASES]
)
class TestFusedAggregatorKernels:
    """Forward equivalence vs the composite formulation and gradcheck for
    the three fused non-attention aggregators (Table II)."""

    D = 3

    def _inputs(self, ids, seed):
        rng = np.random.default_rng(seed)
        h = rng.normal(size=(ids.size, self.D)).astype(np.float32)

        def mat(*shape):
            return (rng.normal(size=shape) * 0.6).astype(np.float32)

        return h, mat

    def _dm(self, num):
        return np.linspace(-1, 1, num * self.D).reshape(
            num, self.D
        ).astype(np.float32)

    # -- conv_sum -------------------------------------------------------
    def test_conv_sum(self, name, ids, num):
        layout = SegmentLayout(ids, num)
        h, mat = self._inputs(ids, seed=11)
        w, b = mat(self.D, self.D), mat(self.D)
        m, s = conv_sum_forward_np(h, w, b, layout)
        np.testing.assert_allclose(
            m, ref_segment_sum(h @ w + b, ids, num), rtol=1e-5, atol=1e-6
        )
        dm = self._dm(num)
        dh, dw, db = conv_sum_backward_np(dm, s, w, layout)

        def value():
            out, _ = conv_sum_forward_np(h, w, b, layout)
            return float((out.astype(np.float64) * dm).sum())

        _finite_difference_check(value, [(h, dh), (w, dw), (b, db)])

    def test_conv_sum_need_flags(self, name, ids, num):
        layout = SegmentLayout(ids, num)
        h, mat = self._inputs(ids, seed=12)
        w, b = mat(self.D, self.D), mat(self.D)
        _, s = conv_sum_forward_np(h, w, b, layout)
        dh, dw, db = conv_sum_backward_np(
            self._dm(num), s, w, layout, need_h=False, need_w=False
        )
        assert dh is None and dw is None and db is None

    # -- deepset --------------------------------------------------------
    def test_deepset(self, name, ids, num):
        layout = SegmentLayout(ids, num)
        h, mat = self._inputs(ids, seed=21)
        w1, b1 = mat(self.D, self.D), mat(self.D)
        w2, b2 = mat(self.D, self.D), mat(self.D)
        wr, br = mat(self.D, self.D), mat(self.D)
        m, saved = deepset_forward_np(h, w1, b1, w2, b2, wr, br, layout)
        phi = np.maximum(h @ w1 + b1, 0.0) @ w2 + b2
        expect = ref_segment_sum(phi, ids, num) @ wr + br
        np.testing.assert_allclose(m, expect, rtol=1e-5, atol=1e-6)
        dm = self._dm(num)
        grads = deepset_backward_np(dm, h, w1, w2, wr, saved, layout)

        def value():
            out, _ = deepset_forward_np(h, w1, b1, w2, b2, wr, br, layout)
            return float((out.astype(np.float64) * dm).sum())

        _finite_difference_check(
            value, list(zip((h, w1, b1, w2, b2, wr, br), grads))
        )

    # -- gated_sum ------------------------------------------------------
    def test_gated_sum(self, name, ids, num):
        layout = SegmentLayout(ids, num)
        h, mat = self._inputs(ids, seed=31)
        wg, bg = mat(self.D, self.D), mat(self.D)
        wv, bv = mat(self.D, self.D), mat(self.D)
        m, saved = gated_sum_forward_np(h, wg, bg, wv, bv, layout)
        gate = 1.0 / (1.0 + np.exp(-(h @ wg + bg)))
        expect = ref_segment_sum(gate * (h @ wv + bv), ids, num)
        np.testing.assert_allclose(m, expect, rtol=1e-5, atol=1e-6)
        dm = self._dm(num)
        grads = gated_sum_backward_np(dm, h, wg, wv, saved, layout)

        def value():
            out, _ = gated_sum_forward_np(h, wg, bg, wv, bv, layout)
            return float((out.astype(np.float64) * dm).sum())

        _finite_difference_check(
            value, list(zip((h, wg, bg, wv, bv), grads))
        )


class TestPreProjectedGRU:
    """``gru_pre_*`` with ``gh = h @ W_hh + b_hh`` must reproduce the full
    fused GRU, with the hidden-path gradient routed through ``dgh``."""

    def _data(self, n=4, din=3, d=5, seed=17):
        rng = np.random.default_rng(seed)
        return (
            rng.normal(size=(n, din)).astype(np.float32),
            rng.normal(size=(n, d)).astype(np.float32),
            rng.normal(size=(din, 3 * d)).astype(np.float32) * 0.5,
            rng.normal(size=(d, 3 * d)).astype(np.float32) * 0.5,
            rng.normal(size=3 * d).astype(np.float32) * 0.5,
            rng.normal(size=3 * d).astype(np.float32) * 0.5,
        )

    def test_forward_matches_full(self):
        x, h, w_ih, w_hh, b_ih, b_hh = self._data()
        out_full, _ = gru_forward_np(x, h, w_ih, w_hh, b_ih, b_hh)
        out_pre, _ = gru_pre_forward_np(
            x, h, h @ w_hh + b_hh, w_ih, b_ih
        )
        np.testing.assert_array_equal(out_full, out_pre)

    def test_backward_chains_to_full(self):
        x, h, w_ih, w_hh, b_ih, b_hh = self._data(seed=23)
        grad = np.linspace(-1, 1, h.size).reshape(h.shape).astype(np.float32)
        _, saved_full = gru_forward_np(x, h, w_ih, w_hh, b_ih, b_hh)
        dx_f, dh_f, dw_ih_f, dw_hh_f, db_ih_f, db_hh_f = gru_backward_np(
            grad, x, h, w_ih, w_hh, saved_full
        )
        gh = h @ w_hh + b_hh
        _, saved_pre = gru_pre_forward_np(x, h, gh, w_ih, b_ih)
        dx, dh, dgh, dw_ih, db_ih = gru_pre_backward_np(
            grad, x, h, w_ih, saved_pre
        )
        np.testing.assert_allclose(dx, dx_f, rtol=1e-6, atol=1e-7)
        np.testing.assert_allclose(dw_ih, dw_ih_f, rtol=1e-6, atol=1e-7)
        np.testing.assert_allclose(db_ih, db_ih_f, rtol=1e-6, atol=1e-7)
        # chaining dgh through the (batched-per-pass) transform recovers
        # the full GRU's hidden-side gradients
        np.testing.assert_allclose(
            dh + dgh @ w_hh.T, dh_f, rtol=1e-5, atol=1e-6
        )
        np.testing.assert_allclose(h.T @ dgh, dw_hh_f, rtol=1e-5, atol=1e-6)
        np.testing.assert_allclose(dgh.sum(0), db_hh_f, rtol=1e-5, atol=1e-6)

    def test_need_flags(self):
        x, h, w_ih, w_hh, b_ih, _ = self._data(seed=29)
        gh = h @ w_hh
        _, saved = gru_pre_forward_np(x, h, gh, w_ih, b_ih)
        grad = np.ones_like(h)
        dx, dh, dgh, dw_ih, db_ih = gru_pre_backward_np(
            grad, x, h, w_ih, saved,
            need_x=False, need_h=False, need_gh=False, need_w=False,
        )
        assert dx is None and dh is None and dgh is None
        assert dw_ih is None and db_ih is None


class TestAccumulateOwnership:
    def test_repeated_accumulation_still_sums(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        g = np.full((2, 2), 3.0, dtype=np.float32)
        x._accumulate(g.copy(), own=True)
        x._accumulate(g.copy(), own=True)
        np.testing.assert_array_equal(x.grad, np.full((2, 2), 6.0))

    def test_accumulate_rows(self):
        x = Tensor(np.zeros((4, 2)), requires_grad=True)
        x._accumulate_rows(np.array([1, 3]), np.ones((2, 2), np.float32))
        x._accumulate_rows(np.array([1]), np.full((1, 2), 2.0, np.float32))
        np.testing.assert_array_equal(
            x.grad, [[0, 0], [3, 3], [0, 0], [1, 1]]
        )

    def test_non_float32_grad_still_copied(self):
        x = Tensor(np.ones(3), requires_grad=True)
        g = np.ones(3, dtype=np.float64)
        x._accumulate(g, own=True)
        assert x.grad.dtype == np.float32
        g[:] = 99.0
        np.testing.assert_array_equal(x.grad, np.ones(3))
