"""Tests for the compiled segment/GRU/attention kernels.

Two angles on every kernel: finite-difference gradcheck, and equivalence
against the pre-fast-path reference ops (``np.add.at``/``np.maximum.at``
reductions, the expression-by-expression GRU) across empty-segment,
single-edge and large-fan-in edge cases.
"""

import numpy as np
import pytest

from repro.nn import Tensor, concat, gather_rows
from repro.nn.kernels import (
    SegmentLayout,
    attention_backward_np,
    attention_forward_np,
    segment_max_np,
    segment_present_sum,
    segment_softmax_np,
    segment_sum_np,
)
from repro.nn.modules import GRUCell

from .gradcheck import check_gradients

# ---------------------------------------------------------------------------
# reference implementations (the ops the kernels replaced)
# ---------------------------------------------------------------------------


def ref_segment_sum(x, ids, num_segments):
    out = np.zeros((num_segments,) + x.shape[1:], dtype=np.float32)
    np.add.at(out, ids, x)
    return out


def ref_segment_max(x, ids, num_segments):
    out = np.full(num_segments, -np.inf, dtype=np.float32)
    np.maximum.at(out, ids, x)
    return out


def ref_segment_softmax(s, ids, num_segments):
    seg_max = ref_segment_max(s, ids, num_segments)
    exps = np.exp(s - seg_max[ids])
    denom = ref_segment_sum(exps, ids, num_segments)
    return exps / denom[ids]


def reference_gru(cell, x, h):
    """The original ~15-node composite GRU formulation."""
    d = cell.hidden_size
    gi = (x @ cell.w_ih + cell.b_ih).data
    gh = (h @ cell.w_hh + cell.b_hh).data
    r = 1.0 / (1.0 + np.exp(-(gi[:, :d] + gh[:, :d])))
    z = 1.0 / (1.0 + np.exp(-(gi[:, d:2 * d] + gh[:, d:2 * d])))
    n = np.tanh(gi[:, 2 * d:] + r * gh[:, 2 * d:])
    return (1.0 - z) * n + z * h.data


#: (name, segment_ids, num_segments) covering the structural edge cases
SEGMENT_CASES = [
    ("empty", np.zeros(0, np.int64), 3),
    ("single_edge", np.array([1]), 3),
    ("empty_segments_interleaved", np.array([0, 0, 4, 2, 4]), 6),
    ("large_fan_in", np.zeros(500, np.int64), 2),
    ("all_distinct", np.arange(7), 7),
    ("unsorted", np.array([3, 0, 2, 0, 3, 1, 3]), 4),
]


@pytest.mark.parametrize(
    "name,ids,num", SEGMENT_CASES, ids=[c[0] for c in SEGMENT_CASES]
)
class TestSegmentKernelEquivalence:
    def test_sum_matches_add_at(self, name, ids, num):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(ids.size, 3)).astype(np.float32)
        layout = SegmentLayout(ids, num)
        # reduceat associates pairwise where add.at is strictly
        # sequential, so agreement is to float32 round-off, not bitwise
        np.testing.assert_allclose(
            segment_sum_np(x, layout),
            ref_segment_sum(x, ids, num),
            rtol=1e-6, atol=1e-6,
        )

    def test_max_matches_maximum_at(self, name, ids, num):
        rng = np.random.default_rng(2)
        s = rng.normal(size=ids.size).astype(np.float32)
        layout = SegmentLayout(ids, num)
        np.testing.assert_array_equal(
            segment_max_np(s, layout), ref_segment_max(s, ids, num)
        )

    def test_softmax_matches_reference(self, name, ids, num):
        if ids.size == 0:
            pytest.skip("softmax over zero edges is vacuous")
        rng = np.random.default_rng(3)
        s = rng.normal(size=ids.size).astype(np.float32)
        layout = SegmentLayout(ids, num)
        np.testing.assert_allclose(
            segment_softmax_np(s, layout),
            ref_segment_softmax(s, ids, num),
            rtol=1e-6,
        )

    def test_present_sum_touches_only_present(self, name, ids, num):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(ids.size, 2)).astype(np.float32)
        layout = SegmentLayout(ids, num)
        present, sums = segment_present_sum(x, layout)
        assert sorted(set(present.tolist())) == sorted(set(ids.tolist()))
        dense = segment_sum_np(x, layout)
        np.testing.assert_array_equal(dense[present], sums)


class TestSegmentLayout:
    def test_rejects_out_of_range_ids(self):
        with pytest.raises(ValueError, match="segment ids"):
            SegmentLayout(np.array([0, 5]), 3)
        with pytest.raises(ValueError, match="segment ids"):
            SegmentLayout(np.array([-1]), 3)

    def test_gather_rows_with_layout_matches_without(self):
        idx = np.array([0, 2, 2, 1, 2])
        layout = SegmentLayout(idx, 4)
        w = np.arange(10, dtype=np.float32).reshape(5, 2)
        grads = []
        for lay in (None, layout):
            x = Tensor(np.arange(8, dtype=np.float32).reshape(4, 2),
                       requires_grad=True)
            out = gather_rows(x, idx, layout=lay)
            (out * Tensor(w)).sum().backward()
            grads.append(x.grad)
        np.testing.assert_array_equal(grads[0], grads[1])


class TestFusedGRU:
    def _data(self, n=3, din=4, d=5, seed=0):
        rng = np.random.default_rng(seed)
        return (
            rng.normal(size=(n, din)).astype(np.float32),
            rng.normal(size=(n, d)).astype(np.float32),
        )

    def test_forward_matches_reference(self):
        x_np, h_np = self._data()
        cell = GRUCell(4, 5, np.random.default_rng(7))
        out = cell(Tensor(x_np), Tensor(h_np))
        np.testing.assert_allclose(
            out.data,
            reference_gru(cell, Tensor(x_np), Tensor(h_np)),
            rtol=1e-6, atol=1e-7,
        )

    def test_gradcheck_all_inputs_and_params(self):
        mix = np.linspace(0.5, 1.5, 3 * 5).reshape(3, 5).astype(np.float32)

        def build(params):
            x, h, w_ih, w_hh, b_ih, b_hh = params
            cell = GRUCell.__new__(GRUCell)
            cell.input_size, cell.hidden_size = 4, 5
            cell.w_ih, cell.w_hh, cell.b_ih, cell.b_hh = w_ih, w_hh, b_ih, b_hh
            return (cell(x, h) * Tensor(mix)).sum()

        check_gradients(
            build,
            [(3, 4), (3, 5), (4, 15), (5, 15), (15,), (15,)],
            low=0.05, high=0.6,
        )

    def test_forward_with_features_matches_concat(self):
        m_np, h_np = self._data(din=4)
        feats = np.eye(3, dtype=np.float32)
        cell = GRUCell(4 + 3, 5, np.random.default_rng(9))
        m1 = Tensor(m_np, requires_grad=True)
        m2 = Tensor(m_np, requires_grad=True)
        fused = cell.forward_with_features(m1, feats, Tensor(h_np))
        composite = cell(concat([m2, Tensor(feats)], axis=1), Tensor(h_np))
        np.testing.assert_array_equal(fused.data, composite.data)
        w = np.linspace(-1, 1, fused.data.size).reshape(fused.data.shape)
        for out, m in ((fused, m1), (composite, m2)):
            cell.zero_grad()
            (out * Tensor(w.astype(np.float32))).sum().backward()
        np.testing.assert_allclose(m1.grad, m2.grad, rtol=1e-5, atol=1e-7)

    def test_hidden_side_params_get_grads_when_input_side_frozen(self):
        # regression: the fused backward must not gate w_hh/b_hh grads on
        # the input-side parameters' requires_grad
        x_np, h_np = self._data()
        cell = GRUCell(4, 5, np.random.default_rng(11))
        cell.w_ih.requires_grad = False
        cell.b_ih.requires_grad = False
        cell(Tensor(x_np), Tensor(h_np)).sum().backward()
        assert cell.w_hh.grad is not None
        assert cell.b_hh.grad is not None
        assert cell.w_ih.grad is None and cell.b_ih.grad is None

    def test_saved_activations_independent_of_later_calls(self):
        # two forwards from the same cell must not share saved state
        x1, h1 = self._data(seed=1)
        x2, h2 = self._data(seed=2)
        cell = GRUCell(4, 5, np.random.default_rng(3))
        out1 = cell(Tensor(x1), Tensor(h1, requires_grad=True))
        cell(Tensor(x2), Tensor(h2))
        expect = reference_gru(cell, Tensor(x1), Tensor(h1))
        np.testing.assert_allclose(out1.data, expect, rtol=1e-6)


class TestFusedAttention:
    def _case(self, num_edges=7, num_targets=3, dim=4, attr_dim=2, seed=0):
        rng = np.random.default_rng(seed)
        ids = np.sort(rng.integers(0, num_targets, size=num_edges))
        return (
            rng.normal(size=(num_edges, dim)).astype(np.float32),
            rng.normal(size=(num_targets, dim)).astype(np.float32),
            rng.normal(size=(dim, 1)).astype(np.float32),
            rng.normal(size=(dim, 1)).astype(np.float32),
            rng.normal(size=(attr_dim, 1)).astype(np.float32),
            rng.normal(size=(num_edges, attr_dim)).astype(np.float32),
            SegmentLayout(ids, num_targets),
        )

    def test_forward_matches_composite_formulation(self):
        h_src, q, wq, wk, we, attr, layout = self._case()
        ids = layout.segment_ids
        m, alpha = attention_forward_np(h_src, q, wq, wk, we, attr, layout)
        scores = (
            (q @ wq).reshape(-1)[ids]
            + (h_src @ wk).reshape(-1)
            + (attr @ we).reshape(-1)
        )
        expect_alpha = ref_segment_softmax(scores, ids, layout.num_segments)
        np.testing.assert_allclose(alpha, expect_alpha, rtol=1e-6)
        expect_m = ref_segment_sum(
            h_src * expect_alpha[:, None], ids, layout.num_segments
        )
        np.testing.assert_allclose(m, expect_m, rtol=1e-5, atol=1e-7)

    def test_backward_matches_finite_differences(self):
        h_src, q, wq, wk, we, attr, layout = self._case()
        dm = np.linspace(-1, 1, q.size).reshape(q.shape).astype(np.float32)

        def value(h_src=h_src, q=q, wq=wq, wk=wk, we=we):
            m, _ = attention_forward_np(h_src, q, wq, wk, we, attr, layout)
            return float((m.astype(np.float64) * dm).sum())

        _, alpha = attention_forward_np(h_src, q, wq, wk, we, attr, layout)
        dh, dq, dwq, dwk, dwe = attention_backward_np(
            dm, h_src, q, wq, wk, attr, alpha, layout, need_edge=True
        )
        eps = 1e-2
        for arr, grad in ((h_src, dh), (q, dq), (wq, dwq), (wk, dwk),
                          (we, dwe)):
            num = np.zeros_like(arr, dtype=np.float64)
            flat, nflat = arr.reshape(-1), num.reshape(-1)
            for i in range(flat.size):
                orig = flat[i]
                flat[i] = orig + eps
                fp = value()
                flat[i] = orig - eps
                fm = value()
                flat[i] = orig
                nflat[i] = (fp - fm) / (2 * eps)
            np.testing.assert_allclose(grad, num, atol=2e-2, rtol=8e-2)

    def test_empty_segments_get_zero_message(self):
        h_src, q, wq, wk, we, attr, layout = self._case()
        # add two extra targets nobody feeds
        layout2 = SegmentLayout(layout.segment_ids, layout.num_segments + 2)
        q2 = np.concatenate([q, np.ones((2, q.shape[1]), np.float32)])
        m, _ = attention_forward_np(h_src, q2, wq, wk, we, attr, layout2)
        np.testing.assert_array_equal(m[-2:], 0.0)


class TestAccumulateOwnership:
    def test_repeated_accumulation_still_sums(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        g = np.full((2, 2), 3.0, dtype=np.float32)
        x._accumulate(g.copy(), own=True)
        x._accumulate(g.copy(), own=True)
        np.testing.assert_array_equal(x.grad, np.full((2, 2), 6.0))

    def test_accumulate_rows(self):
        x = Tensor(np.zeros((4, 2)), requires_grad=True)
        x._accumulate_rows(np.array([1, 3]), np.ones((2, 2), np.float32))
        x._accumulate_rows(np.array([1]), np.full((1, 2), 2.0, np.float32))
        np.testing.assert_array_equal(
            x.grad, [[0, 0], [3, 3], [0, 0], [1, 1]]
        )

    def test_non_float32_grad_still_copied(self):
        x = Tensor(np.ones(3), requires_grad=True)
        g = np.ones(3, dtype=np.float64)
        x._accumulate(g, own=True)
        assert x.grad.dtype == np.float32
        g[:] = 99.0
        np.testing.assert_array_equal(x.grad, np.ones(3))
