"""Tests for optimisers and serialization."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Linear,
    MLP,
    SGD,
    Tensor,
    clip_grad_norm,
    l1_loss,
    load_module,
    save_module,
)


def quadratic_step(opt_cls, **kwargs):
    """Minimise (x - 3)^2 for a few steps; return final x."""
    x = Tensor(np.array([0.0], dtype=np.float32), requires_grad=True)
    opt = opt_cls([x], **kwargs)
    for _ in range(200):
        opt.zero_grad()
        loss = (x - 3.0) ** 2.0
        loss.backward()
        opt.step()
    return float(x.data[0])


class TestSGD:
    def test_converges_on_quadratic(self):
        assert quadratic_step(SGD, lr=0.1) == pytest.approx(3.0, abs=1e-3)

    def test_momentum_converges(self):
        assert quadratic_step(SGD, lr=0.05, momentum=0.9) == pytest.approx(
            3.0, abs=1e-2
        )

    def test_no_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_skips_params_without_grad(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([x], lr=0.1)
        opt.step()  # no grad yet: must be a no-op
        assert x.data[0] == 1.0


class TestAdam:
    def test_converges_on_quadratic(self):
        assert quadratic_step(Adam, lr=0.1) == pytest.approx(3.0, abs=1e-2)

    def test_learns_small_regression(self):
        rng = np.random.default_rng(0)
        model = MLP([2, 16, 1], rng, final_activation="sigmoid")
        x = rng.normal(size=(64, 2)).astype(np.float32)
        y = (1 / (1 + np.exp(-(x[:, :1] * 2 - x[:, 1:] * 0.5)))).astype(np.float32)
        opt = Adam(model.parameters(), lr=1e-2)
        first = None
        for step in range(150):
            opt.zero_grad()
            loss = l1_loss(model(Tensor(x)), y)
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        final = l1_loss(model(Tensor(x)), y).item()
        assert final < first * 0.5

    def test_weight_decay_shrinks_weights(self):
        x = Tensor(np.array([5.0]), requires_grad=True)
        opt = Adam([x], lr=0.01, weight_decay=1.0)
        for _ in range(50):
            opt.zero_grad()
            (x * 0.0).sum().backward()  # zero data gradient, only decay
            opt.step()
        assert abs(float(x.data[0])) < 5.0


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 100.0).backward()
        norm = clip_grad_norm([x], max_norm=1.0)
        assert norm == pytest.approx(100.0)
        assert np.linalg.norm(x.grad) == pytest.approx(1.0, rel=1e-5)

    def test_leaves_small_gradients(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 0.5).backward()
        clip_grad_norm([x], max_norm=10.0)
        assert x.grad[0] == pytest.approx(0.5)


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        m1 = Linear(3, 2, np.random.default_rng(1))
        m2 = Linear(3, 2, np.random.default_rng(2))
        path = tmp_path / "model.npz"
        save_module(m1, path)
        load_module(m2, path)
        x = Tensor(np.ones((1, 3)))
        np.testing.assert_allclose(m1(x).data, m2(x).data)
