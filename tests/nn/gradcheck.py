"""Numerical gradient checking for the autograd engine."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn import Tensor


def numeric_gradient(
    f: Callable[[], float], x: np.ndarray, eps: float = 1e-2
) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. array ``x``.

    ``f`` must read ``x`` by reference (we mutate entries in place).  The
    engine stores float32, so ``eps`` is large and tolerances loose.
    """
    grad = np.zeros(x.shape, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        fp = f()
        flat[i] = orig - eps
        fm = f()
        flat[i] = orig
        gflat[i] = (fp - fm) / (2.0 * eps)
    return grad


def check_gradients(
    build: Callable[[Sequence[Tensor]], Tensor],
    shapes: Sequence[tuple],
    seed: int = 0,
    atol: float = 2e-2,
    rtol: float = 8e-2,
    low: float = 0.2,
    high: float = 1.5,
) -> None:
    """Assert autograd gradients match numerical ones.

    ``build`` maps a list of parameter tensors to a scalar output tensor.
    Inputs are drawn away from zero to dodge |x| and relu kinks.
    """
    rng = np.random.default_rng(seed)
    params = []
    for shape in shapes:
        signs = rng.choice([-1.0, 1.0], size=shape)
        mags = rng.uniform(low, high, size=shape)
        params.append(Tensor((signs * mags).astype(np.float32), requires_grad=True))

    out = build(params)
    assert out.size == 1, "build() must return a scalar"
    out.backward()

    for k, p in enumerate(params):

        def f(p=p):
            return float(build(params).item())

        num = numeric_gradient(f, p.data)
        assert p.grad is not None, f"param {k} received no gradient"
        np.testing.assert_allclose(
            p.grad, num, atol=atol, rtol=rtol, err_msg=f"param {k} gradient mismatch"
        )
