"""Tests for the autograd Tensor: forward semantics and gradients."""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad

from .gradcheck import check_gradients


class TestForward:
    def test_add_broadcast(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.arange(3))
        np.testing.assert_allclose((a + b).data, 1 + np.arange(3) * np.ones((2, 3)))

    def test_scalar_coercion(self):
        t = Tensor([1.0, 2.0])
        np.testing.assert_allclose((t + 1).data, [2, 3])
        np.testing.assert_allclose((2 * t).data, [2, 4])
        np.testing.assert_allclose((1 - t).data, [0, -1])

    def test_matmul(self):
        a = Tensor(np.eye(3))
        b = Tensor(np.arange(9).reshape(3, 3))
        np.testing.assert_allclose((a @ b).data, b.data)

    def test_reductions(self):
        t = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        assert t.sum().item() == 15
        assert t.mean().item() == pytest.approx(2.5)
        np.testing.assert_allclose(t.sum(axis=0).data, [3, 5, 7])
        assert t.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_elementwise_functions(self):
        x = np.array([-1.0, 0.5], dtype=np.float32)
        t = Tensor(x)
        np.testing.assert_allclose(t.abs().data, np.abs(x))
        np.testing.assert_allclose(t.exp().data, np.exp(x), rtol=1e-6)
        np.testing.assert_allclose(t.sigmoid().data, 1 / (1 + np.exp(-x)), rtol=1e-6)
        np.testing.assert_allclose(t.tanh().data, np.tanh(x), rtol=1e-6)
        np.testing.assert_allclose(t.relu().data, [0, 0.5])

    def test_reshape_transpose(self):
        t = Tensor(np.arange(6).reshape(2, 3))
        assert t.reshape(3, 2).shape == (3, 2)
        assert t.T.shape == (3, 2)

    def test_clip_probability(self):
        t = Tensor([-0.5, 0.5, 1.5])
        clipped = t.clip_probability(eps=1e-6)
        assert clipped.data[0] == pytest.approx(1e-6)
        assert clipped.data[2] == pytest.approx(1 - 1e-6)

    def test_item_and_len(self):
        assert Tensor([3.0]).item() == 3.0
        assert len(Tensor(np.zeros((4, 2)))) == 4


class TestBackwardBasics:
    def test_add_grads(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 1])
        np.testing.assert_allclose(b.grad, [1, 1])

    def test_mul_grads(self):
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([5.0], requires_grad=True)
        (a * b).backward()
        assert a.grad[0] == 5.0
        assert b.grad[0] == 2.0

    def test_broadcast_grad_sums(self):
        a = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(b.grad, [4, 4, 4])

    def test_diamond_reuse_accumulates(self):
        """x used twice: gradient must accumulate along both paths."""
        x = Tensor([3.0], requires_grad=True)
        y = x * x  # dy/dx = 2x = 6
        y.backward()
        assert x.grad[0] == pytest.approx(6.0)

    def test_deep_chain(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(50):
            y = y * 1.1
        y.backward()
        assert x.grad[0] == pytest.approx(1.1**50, rel=1e-3)

    def test_grad_accumulates_across_backwards(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward()
        (x * 3).backward()
        assert x.grad[0] == pytest.approx(5.0)

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError, match="requires no grad"):
            Tensor([1.0]).backward()

    def test_backward_non_scalar_needs_grad_arg(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError, match="non-scalar"):
            (x * 2).backward()
        (x * 2).backward(np.ones(2))
        np.testing.assert_allclose(x.grad, [2, 2])

    def test_no_grad_context(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_detach(self):
        x = Tensor([1.0], requires_grad=True)
        y = x.detach() * 2
        assert not y.requires_grad


class TestGradcheck:
    """Numerical verification of each differentiable op."""

    def test_add_sub(self):
        check_gradients(lambda p: (p[0] + p[1] - p[0] * 0.3).sum(), [(3, 2), (3, 2)])

    def test_mul(self):
        check_gradients(lambda p: (p[0] * p[1]).sum(), [(4,), (4,)])

    def test_div(self):
        check_gradients(lambda p: (p[0] / p[1]).sum(), [(3,), (3,)], low=0.5)

    def test_matmul(self):
        check_gradients(lambda p: (p[0] @ p[1]).sum(), [(3, 4), (4, 2)])

    def test_pow(self):
        check_gradients(lambda p: (p[0] ** 2.0).sum(), [(5,)])

    def test_sigmoid_tanh_exp(self):
        check_gradients(lambda p: p[0].sigmoid().sum(), [(6,)])
        check_gradients(lambda p: p[0].tanh().sum(), [(6,)])
        check_gradients(lambda p: (p[0] * 0.3).exp().sum(), [(6,)])

    def test_log(self):
        # square keeps arguments positive regardless of drawn signs
        check_gradients(
            lambda p: (p[0] ** 2.0 + 0.5).log().sum(), [(5,)], low=0.5, high=2.0
        )

    def test_abs_away_from_zero(self):
        check_gradients(lambda p: p[0].abs().sum(), [(6,)], low=0.3)

    def test_relu_away_from_zero(self):
        check_gradients(lambda p: p[0].relu().sum(), [(6,)], low=0.3)

    def test_mean_axis(self):
        check_gradients(lambda p: p[0].mean(axis=1).sum(), [(3, 4)])

    def test_sum_keepdims(self):
        check_gradients(
            lambda p: (p[0].sum(axis=0, keepdims=True) * p[0]).sum(), [(3, 4)]
        )

    def test_reshape_transpose(self):
        check_gradients(lambda p: (p[0].reshape(6).T * 2).sum(), [(2, 3)])

    def test_composite_expression(self):
        check_gradients(
            lambda p: ((p[0] @ p[1]).tanh() * p[2]).sigmoid().mean(),
            [(3, 4), (4, 3), (3, 3)],
        )
