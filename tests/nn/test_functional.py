"""Tests for graph-oriented ops: concat, gather, scatter, segment ops."""

import numpy as np
import pytest

from repro.nn import (
    Tensor,
    concat,
    gather_rows,
    l1_loss,
    scatter_rows,
    segment_softmax,
    segment_sum,
)

from .gradcheck import check_gradients


class TestConcat:
    def test_forward(self):
        a = Tensor(np.ones((2, 2)))
        b = Tensor(np.zeros((2, 3)))
        out = concat([a, b], axis=1)
        assert out.shape == (2, 5)
        np.testing.assert_allclose(out.data[:, :2], 1)
        np.testing.assert_allclose(out.data[:, 2:], 0)

    def test_grad_routing(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 1)), requires_grad=True)
        out = concat([a, b], axis=1)
        (out * Tensor(np.array([[1, 2, 3], [4, 5, 6]]))).sum().backward()
        np.testing.assert_allclose(a.grad, [[1, 2], [4, 5]])
        np.testing.assert_allclose(b.grad, [[3], [6]])

    def test_gradcheck(self):
        check_gradients(
            lambda p: (concat([p[0], p[1]], axis=1) ** 2.0).sum(),
            [(3, 2), (3, 4)],
        )


class TestGatherRows:
    def test_forward(self):
        x = Tensor(np.arange(12).reshape(4, 3))
        out = gather_rows(x, np.array([2, 0, 2]))
        np.testing.assert_allclose(out.data, x.data[[2, 0, 2]])

    def test_repeated_rows_accumulate_grads(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        out = gather_rows(x, np.array([1, 1, 0]))
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [[1, 1], [2, 2], [0, 0]])

    def test_gradcheck(self):
        idx = np.array([0, 2, 2, 1])
        check_gradients(lambda p: (gather_rows(p[0], idx) ** 2.0).sum(), [(3, 2)])


class TestScatterRows:
    def test_forward(self):
        base = Tensor(np.zeros((4, 2)))
        rows = Tensor(np.ones((2, 2)))
        out = scatter_rows(base, np.array([1, 3]), rows)
        np.testing.assert_allclose(out.data[[1, 3]], 1)
        np.testing.assert_allclose(out.data[[0, 2]], 0)

    def test_grads_split_between_base_and_rows(self):
        base = Tensor(np.zeros((3, 1)), requires_grad=True)
        rows = Tensor(np.zeros((1, 1)), requires_grad=True)
        out = scatter_rows(base, np.array([1]), rows)
        (out * Tensor(np.array([[1.0], [2.0], [3.0]]))).sum().backward()
        np.testing.assert_allclose(base.grad, [[1], [0], [3]])
        np.testing.assert_allclose(rows.grad, [[2]])

    def test_gradcheck(self):
        idx = np.array([0, 2])
        check_gradients(
            lambda p: (scatter_rows(p[0], idx, p[1]) ** 2.0).sum(),
            [(4, 2), (2, 2)],
        )

    def test_duplicate_indices_rejected(self):
        base = Tensor(np.zeros((4, 2)))
        rows = Tensor(np.ones((3, 2)))
        with pytest.raises(ValueError, match="unique"):
            scatter_rows(base, np.array([1, 3, 1]), rows)


class TestSegmentSum:
    def test_forward(self):
        x = Tensor(np.array([[1.0], [2.0], [4.0]]))
        out = segment_sum(x, np.array([0, 0, 2]), 3)
        np.testing.assert_allclose(out.data, [[3], [0], [4]])

    def test_empty_segment_zero(self):
        x = Tensor(np.ones((2, 2)))
        out = segment_sum(x, np.array([1, 1]), 3)
        np.testing.assert_allclose(out.data[0], 0)
        np.testing.assert_allclose(out.data[2], 0)

    def test_gradcheck(self):
        seg = np.array([0, 1, 1, 0])
        check_gradients(
            lambda p: (segment_sum(p[0], seg, 2) ** 2.0).sum(), [(4, 3)]
        )


class TestSegmentSoftmax:
    def test_sums_to_one_per_segment(self):
        scores = Tensor(np.array([1.0, 2.0, 3.0, -1.0, 0.5]))
        seg = np.array([0, 0, 0, 1, 1])
        out = segment_softmax(scores, seg, 2).data
        assert out[:3].sum() == pytest.approx(1.0, abs=1e-6)
        assert out[3:].sum() == pytest.approx(1.0, abs=1e-6)

    def test_matches_manual_softmax(self):
        s = np.array([0.3, -0.2, 1.7], dtype=np.float32)
        out = segment_softmax(Tensor(s), np.zeros(3, dtype=int), 1).data
        expect = np.exp(s - s.max())
        expect /= expect.sum()
        np.testing.assert_allclose(out, expect, rtol=1e-5)

    def test_singleton_segment_is_one(self):
        out = segment_softmax(Tensor(np.array([42.0])), np.array([0]), 1).data
        assert out[0] == pytest.approx(1.0)

    def test_numerical_stability_large_scores(self):
        s = Tensor(np.array([1000.0, 1000.0]))
        out = segment_softmax(s, np.array([0, 0]), 1).data
        np.testing.assert_allclose(out, [0.5, 0.5])

    def test_gradcheck(self):
        seg = np.array([0, 0, 1, 1, 1])
        weights = np.array([1.0, -2.0, 0.5, 3.0, 1.0], dtype=np.float32)
        check_gradients(
            lambda p: (
                segment_softmax(p[0], seg, 2) * Tensor(weights)
            ).sum(),
            [(5,)],
        )


class TestL1Loss:
    def test_value(self):
        pred = Tensor(np.array([0.0, 1.0]))
        assert l1_loss(pred, np.array([0.5, 0.5])).item() == pytest.approx(0.5)

    def test_gradcheck(self):
        target = np.array([0.4, 0.9, 0.1], dtype=np.float32)
        check_gradients(lambda p: l1_loss(p[0].sigmoid(), target), [(3,)])
