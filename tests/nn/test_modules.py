"""Tests for Module/Linear/MLP/GRUCell and parameter management."""

import numpy as np
import pytest

from repro.nn import GRUCell, Linear, MLP, Module, Sequential, Tensor

from .gradcheck import check_gradients, numeric_gradient


def rng():
    return np.random.default_rng(0)


class TestLinear:
    def test_forward_shape_and_value(self):
        lin = Linear(3, 2, rng())
        lin.weight.data = np.arange(6, dtype=np.float32).reshape(3, 2)
        lin.bias.data = np.array([1.0, -1.0], dtype=np.float32)
        out = lin(Tensor(np.array([[1.0, 0.0, 0.0]])))
        np.testing.assert_allclose(out.data, [[1.0, 0.0]])

    def test_no_bias(self):
        lin = Linear(3, 2, rng(), bias=False)
        assert lin.bias is None
        assert len(lin.parameters()) == 1

    def test_gradients_flow(self):
        lin = Linear(4, 3, rng())
        out = lin(Tensor(np.ones((2, 4)))).sum()
        out.backward()
        assert lin.weight.grad is not None
        assert lin.bias.grad is not None
        np.testing.assert_allclose(lin.bias.grad, [2, 2, 2])


class TestMLP:
    def test_dims_validated(self):
        with pytest.raises(ValueError, match="at least"):
            MLP([4], rng())

    def test_activation_validated(self):
        with pytest.raises(ValueError, match="unknown activation"):
            MLP([4, 2], rng(), final_activation="softplus")

    def test_forward_shape(self):
        mlp = MLP([4, 8, 8, 1], rng())
        assert mlp(Tensor(np.ones((5, 4)))).shape == (5, 1)

    def test_sigmoid_head_in_unit_interval(self):
        mlp = MLP([4, 8, 1], rng(), final_activation="sigmoid")
        out = mlp(Tensor(np.random.default_rng(1).normal(size=(10, 4)))).data
        assert (out > 0).all() and (out < 1).all()

    def test_parameter_count(self):
        mlp = MLP([4, 8, 1], rng())
        assert mlp.num_parameters() == 4 * 8 + 8 + 8 * 1 + 1


class TestGRUCell:
    def test_forward_matches_manual(self):
        d_in, d_h = 3, 2
        cell = GRUCell(d_in, d_h, rng())
        x = np.random.default_rng(2).normal(size=(4, d_in)).astype(np.float32)
        h = np.random.default_rng(3).normal(size=(4, d_h)).astype(np.float32)
        out = cell(Tensor(x), Tensor(h)).data

        gi = x @ cell.w_ih.data + cell.b_ih.data
        gh = h @ cell.w_hh.data + cell.b_hh.data

        def sig(v):
            return 1 / (1 + np.exp(-v))

        r = sig(gi[:, :d_h] + gh[:, :d_h])
        z = sig(gi[:, d_h : 2 * d_h] + gh[:, d_h : 2 * d_h])
        n = np.tanh(gi[:, 2 * d_h :] + r * gh[:, 2 * d_h :])
        expect = (1 - z) * n + z * h
        np.testing.assert_allclose(out, expect, rtol=1e-5, atol=1e-6)

    def test_identity_when_update_gate_saturated(self):
        cell = GRUCell(2, 2, rng())
        # huge positive z-gate bias forces h' == h
        cell.b_ih.data[2:4] = 50.0
        h = np.random.default_rng(4).normal(size=(3, 2)).astype(np.float32)
        out = cell(Tensor(np.zeros((3, 2))), Tensor(h)).data
        np.testing.assert_allclose(out, h, atol=1e-4)

    def test_gradcheck_through_cell(self):
        cell = GRUCell(2, 2, np.random.default_rng(5))

        def build(p):
            out = cell(p[0], p[1])
            return (out * out).sum()

        check_gradients(build, [(3, 2), (3, 2)])

    def test_parameter_gradients(self):
        cell = GRUCell(2, 3, rng())
        loss = (cell(Tensor(np.ones((2, 2))), Tensor(np.zeros((2, 3)))) ** 2.0).sum()
        loss.backward()
        for p in cell.parameters():
            assert p.grad is not None

    def test_weight_gradcheck_numerical(self):
        """Verify gradient w.r.t. GRU weights, not just inputs."""
        cell = GRUCell(2, 2, np.random.default_rng(8))
        x = Tensor(np.random.default_rng(9).normal(size=(3, 2)).astype(np.float32))
        h = Tensor(np.random.default_rng(10).normal(size=(3, 2)).astype(np.float32))

        def loss_value():
            return float((cell(x, h) ** 2.0).sum().item())

        cell.zero_grad()
        (cell(x, h) ** 2.0).sum().backward()
        num = numeric_gradient(loss_value, cell.w_hh.data)
        np.testing.assert_allclose(cell.w_hh.grad, num, atol=2e-2, rtol=8e-2)


class TestModulePlumbing:
    def test_named_parameters_nested(self):
        seq = Sequential(Linear(2, 3, rng()), Linear(3, 1, rng()))
        names = [n for n, _ in seq.named_parameters()]
        assert "layers.0.weight" in names
        assert "layers.1.bias" in names

    def test_state_dict_roundtrip(self):
        mlp1 = MLP([3, 4, 1], np.random.default_rng(1))
        mlp2 = MLP([3, 4, 1], np.random.default_rng(2))
        mlp2.load_state_dict(mlp1.state_dict())
        x = Tensor(np.ones((2, 3)))
        np.testing.assert_allclose(mlp1(x).data, mlp2(x).data)

    def test_state_dict_mismatch_rejected(self):
        mlp = MLP([3, 4, 1], rng())
        state = mlp.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError, match="unexpected"):
            mlp.load_state_dict(state)

    def test_state_dict_shape_mismatch_rejected(self):
        mlp = MLP([3, 4, 1], rng())
        state = mlp.state_dict()
        first = next(iter(state))
        state[first] = np.zeros((99, 99))
        with pytest.raises(ValueError, match="shape mismatch"):
            mlp.load_state_dict(state)

    def test_zero_grad_clears_all(self):
        mlp = MLP([2, 3, 1], rng())
        mlp(Tensor(np.ones((1, 2)))).sum().backward()
        assert any(p.grad is not None for p in mlp.parameters())
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())

    def test_forward_abstract(self):
        with pytest.raises(NotImplementedError):
            Module()(1)
