"""Tests for the signal-probability estimators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aig import AIGBuilder, lit_negate
from repro.sim import (
    cop_probabilities,
    exact_probabilities,
    gate_graph_probabilities,
    monte_carlo_probabilities,
    node_probabilities_from_var_probs,
)
from repro.synth import has_constant_outputs, netlist_to_aig, synthesize

from ..helpers import random_netlist


def tree_aig():
    """Fanout-free AND/OR tree: COP must be exact here."""
    b = AIGBuilder(num_pis=4)
    g1 = b.add_and(b.pi_lit(0), b.pi_lit(1))
    g2 = b.add_and(lit_negate(b.pi_lit(2)), b.pi_lit(3))
    g3 = b.add_and(g1, lit_negate(g2))
    b.add_output(g3)
    return b.build("tree")


def reconvergent_aig():
    """x & !x style correlation through shared structure."""
    b = AIGBuilder(num_pis=2)
    shared = b.add_and(b.pi_lit(0), b.pi_lit(1))
    left = b.add_and(shared, b.pi_lit(0))
    right = b.add_and(shared, b.pi_lit(1))
    b.add_output(b.add_and(left, right))
    return b.build("reconv")


class TestExact:
    def test_pi_probability_is_half(self):
        probs = exact_probabilities(tree_aig())
        assert (probs[1:5] == 0.5).all()

    def test_and_probability(self):
        probs = exact_probabilities(tree_aig())
        assert probs[5] == 0.25  # AND of two PIs

    def test_limit_enforced(self):
        b = AIGBuilder(num_pis=25)
        b.add_output(b.pi_lit(0))
        with pytest.raises(ValueError, match="exact"):
            exact_probabilities(b.build(), max_pis=20)


class TestMonteCarlo:
    def test_converges_to_exact(self):
        aig = tree_aig()
        exact = exact_probabilities(aig)
        mc = monte_carlo_probabilities(aig, num_patterns=200_000, seed=0)
        assert np.abs(exact - mc).max() < 0.01

    def test_seed_reproducible(self):
        aig = tree_aig()
        a = monte_carlo_probabilities(aig, 10_000, seed=5)
        b = monte_carlo_probabilities(aig, 10_000, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        aig = tree_aig()
        a = monte_carlo_probabilities(aig, 10_000, seed=5)
        b = monte_carlo_probabilities(aig, 10_000, seed=6)
        assert not np.array_equal(a, b)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_error_shrinks_with_patterns(self, seed):
        rng = np.random.default_rng(seed)
        nl = random_netlist(rng, num_inputs=5, num_gates=15)
        aig = netlist_to_aig(nl)
        exact = exact_probabilities(aig)
        coarse = monte_carlo_probabilities(aig, 256, seed=seed)
        fine = monte_carlo_probabilities(aig, 65_536, seed=seed)
        # statistically the fine estimate is (almost) always better;
        # allow slack for lucky coarse draws
        assert np.abs(fine - exact).max() <= np.abs(coarse - exact).max() + 0.02


class TestCop:
    def test_exact_on_trees(self):
        aig = tree_aig()
        np.testing.assert_allclose(
            cop_probabilities(aig), exact_probabilities(aig), atol=1e-12
        )

    def test_biased_on_reconvergence(self):
        aig = reconvergent_aig()
        cop = cop_probabilities(aig)
        exact = exact_probabilities(aig)
        # the output is really P(a & b) = 0.25, COP claims 0.25^3-ish
        assert np.abs(cop - exact).max() > 0.1


class TestGateGraphLabels:
    def test_mapping_matches_direct_simulation(self):
        rng = np.random.default_rng(13)
        for _ in range(8):
            nl = random_netlist(rng, num_inputs=4, num_gates=12)
            aig = synthesize(nl)
            if has_constant_outputs(aig) or aig.num_ands == 0:
                continue
            graph = aig.to_gate_graph()
            exact_vars = exact_probabilities(aig)
            mapped = node_probabilities_from_var_probs(graph, exact_vars)
            direct = gate_graph_probabilities(graph, exact_below_pis=10)
            np.testing.assert_allclose(mapped, direct, atol=1e-12)

    def test_labels_in_unit_interval(self):
        rng = np.random.default_rng(99)
        nl = random_netlist(rng, num_inputs=5, num_gates=20)
        aig = synthesize(nl)
        if not has_constant_outputs(aig) and aig.num_ands:
            graph = aig.to_gate_graph()
            probs = gate_graph_probabilities(graph, num_patterns=4096, seed=1)
            assert (probs >= 0).all() and (probs <= 1).all()

    def test_not_node_label_is_complement(self):
        b = AIGBuilder(num_pis=2)
        g = b.add_and(b.pi_lit(0), b.pi_lit(1))
        b.add_output(lit_negate(g))
        graph = b.build().to_gate_graph()
        probs = gate_graph_probabilities(graph, exact_below_pis=4)
        from repro.aig import NOT

        not_nodes = np.nonzero(graph.node_type == NOT)[0]
        assert len(not_nodes) == 1
        assert probs[not_nodes[0]] == pytest.approx(0.75)
