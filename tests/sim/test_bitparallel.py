"""Tests for bit-parallel simulation."""

import numpy as np
import pytest

from repro.aig import AIGBuilder, lit_negate
from repro.sim import (
    exhaustive_patterns,
    output_values,
    popcount,
    random_patterns,
    simulate_aig,
    simulate_gate_graph,
)
from repro.synth import netlist_to_aig

from ..helpers import random_netlist


class TestPatterns:
    def test_random_patterns_shape(self):
        pats = random_patterns(5, 1000, np.random.default_rng(0))
        assert pats.shape == (5, 16)  # ceil(1000/64)
        assert pats.dtype == np.uint64

    def test_exhaustive_small(self):
        pats = exhaustive_patterns(2)
        assert pats.shape == (2, 1)
        # variable 0 toggles every pattern, variable 1 every 2 patterns
        assert int(pats[0, 0]) & 0xF == 0b1010
        assert int(pats[1, 0]) & 0xF == 0b1100

    def test_exhaustive_multiword(self):
        pats = exhaustive_patterns(7)  # 128 patterns, 2 words
        assert pats.shape == (7, 2)
        # each input must be 1 in exactly half the patterns
        assert (popcount(pats) == 64).all()

    def test_exhaustive_limit(self):
        with pytest.raises(ValueError, match="26"):
            exhaustive_patterns(30)

    def test_popcount(self):
        arr = np.array([[0, 1, 0xFF, 2**64 - 1]], dtype=np.uint64)
        assert popcount(arr)[0] == 0 + 1 + 8 + 64


class TestSimulateAig:
    def test_and_gate(self):
        b = AIGBuilder(num_pis=2)
        g = b.add_and(b.pi_lit(0), b.pi_lit(1))
        b.add_output(g)
        aig = b.build()
        vals = simulate_aig(aig, exhaustive_patterns(2))
        assert int(vals[g >> 1, 0]) & 0xF == 0b1000

    def test_constant_row_is_zero(self):
        b = AIGBuilder(num_pis=1)
        b.add_output(b.pi_lit(0))
        vals = simulate_aig(b.build(), exhaustive_patterns(1))
        assert vals[0, 0] == 0

    def test_output_values_complement(self):
        b = AIGBuilder(num_pis=1)
        b.add_output(lit_negate(b.pi_lit(0)))
        aig = b.build()
        vals = simulate_aig(aig, exhaustive_patterns(1))
        outs = output_values(aig, vals)
        assert int(outs[0, 0]) & 0b11 == 0b01  # !a over patterns a=0, a=1

    def test_input_shape_checked(self):
        b = AIGBuilder(num_pis=3)
        b.add_output(b.pi_lit(0))
        with pytest.raises(ValueError, match="input rows"):
            simulate_aig(b.build(), np.zeros((2, 1), dtype=np.uint64))

    def test_matches_netlist_evaluation(self):
        """AIG simulation must agree with direct netlist evaluation."""
        rng = np.random.default_rng(42)
        for _ in range(10):
            nl = random_netlist(rng, num_inputs=4, num_gates=15)
            aig = netlist_to_aig(nl)
            pats = exhaustive_patterns(4)
            aig_out = output_values(aig, simulate_aig(aig, pats))
            net_vals = nl.evaluate(
                {name: pats[k] for k, name in enumerate(nl.inputs)}
            )
            mask = np.uint64((1 << 16) - 1)
            for k, out_name in enumerate(nl.outputs):
                assert (net_vals[out_name][0] & mask) == (aig_out[k, 0] & mask)


def reference_eval(aig, assignment):
    """Pure-python single-pattern AIG evaluation: the oracle."""
    vals = [False] * aig.num_vars
    for k in range(aig.num_pis):
        vals[1 + k] = bool(assignment[k])
    base = 1 + aig.num_pis
    for i in range(aig.num_ands):
        a, b = (int(x) for x in aig.ands[i])
        va = vals[a >> 1] ^ bool(a & 1)
        vb = vals[b >> 1] ^ bool(b & 1)
        vals[base + i] = va and vb
    return vals


class TestExhaustiveOracle:
    """simulate_aig and popcount vs per-pattern evaluation, <= 6 PIs.

    With <= 6 inputs every truth table fits one 64-bit word, so each AIG
    can be checked on *all* input combinations against a bit-free python
    evaluator.
    """

    def test_simulate_aig_matches_oracle(self):
        rng = np.random.default_rng(123)
        for num_pis in range(1, 7):
            for _ in range(5):
                nl = random_netlist(
                    rng, num_inputs=num_pis, num_gates=18, num_outputs=2
                )
                aig = netlist_to_aig(nl)
                values = simulate_aig(aig, exhaustive_patterns(num_pis))
                for p in range(1 << num_pis):
                    expect = reference_eval(
                        aig, [(p >> k) & 1 for k in range(num_pis)]
                    )
                    for var in range(aig.num_vars):
                        got = (int(values[var, 0]) >> p) & 1
                        assert got == int(expect[var]), (
                            f"var {var}, pattern {p:0{num_pis}b}"
                        )

    def test_popcount_matches_oracle_probabilities(self):
        from repro.sim import exact_probabilities

        rng = np.random.default_rng(321)
        for num_pis in range(1, 7):
            nl = random_netlist(
                rng, num_inputs=num_pis, num_gates=15, num_outputs=2
            )
            aig = netlist_to_aig(nl)
            total = 1 << num_pis
            counts = np.zeros(aig.num_vars, dtype=np.int64)
            for p in range(total):
                vals = reference_eval(
                    aig, [(p >> k) & 1 for k in range(num_pis)]
                )
                counts += np.asarray(vals, dtype=np.int64)
            assert np.allclose(exact_probabilities(aig), counts / total)

    def test_popcount_against_python_bit_count(self):
        rng = np.random.default_rng(7)
        for shape in [(1, 1), (3, 4), (10, 1), (2, 16)]:
            words = rng.integers(0, 2**64, size=shape, dtype=np.uint64)
            expect = [sum(int(w).bit_count() for w in row) for row in words]
            assert popcount(words).tolist() == expect


class TestNonMultipleOf64Patterns:
    """The documented edge case: pattern counts that don't fill a word.

    ``random_patterns`` leaves the bits past ``num_patterns`` in the last
    word random, so callers needing an exact count must round up to a
    multiple of 64 — the probability estimators do exactly that.
    """

    def test_word_count_rounds_up(self):
        rng = np.random.default_rng(0)
        assert random_patterns(3, 1, rng).shape == (3, 1)
        assert random_patterns(3, 64, rng).shape == (3, 1)
        assert random_patterns(3, 65, rng).shape == (3, 2)
        assert random_patterns(3, 100, rng).shape == (3, 2)
        assert random_patterns(3, 128, rng).shape == (3, 2)

    def test_estimator_rounds_up_to_word_boundary(self):
        """A 100-pattern request behaves exactly like a 128-pattern one."""
        from repro.sim import monte_carlo_probabilities

        b = AIGBuilder(num_pis=3)
        g = b.add_and(b.pi_lit(0), b.add_and(b.pi_lit(1), b.pi_lit(2)))
        b.add_output(g)
        aig = b.build()
        ragged = monte_carlo_probabilities(aig, num_patterns=100, seed=5)
        padded = monte_carlo_probabilities(aig, num_patterns=128, seed=5)
        assert np.array_equal(ragged, padded)
        assert ((ragged >= 0) & (ragged <= 1)).all()

    def test_tiny_pattern_count_clamped_to_one_word(self):
        from repro.sim import monte_carlo_probabilities

        b = AIGBuilder(num_pis=2)
        b.add_output(b.add_and(b.pi_lit(0), b.pi_lit(1)))
        aig = b.build()
        one = monte_carlo_probabilities(aig, num_patterns=1, seed=3)
        sixty_four = monte_carlo_probabilities(aig, num_patterns=64, seed=3)
        assert np.array_equal(one, sixty_four)


class TestSimulateGateGraph:
    def test_matches_aig_semantics(self):
        rng = np.random.default_rng(77)
        for _ in range(10):
            nl = random_netlist(rng, num_inputs=4, num_gates=15)
            from repro.synth import synthesize, has_constant_outputs

            aig = synthesize(nl)
            if has_constant_outputs(aig):
                continue
            graph = aig.to_gate_graph()
            pats = exhaustive_patterns(4)
            aig_vals = simulate_aig(aig, pats)
            graph_vals = simulate_gate_graph(graph, pats)
            mask = np.uint64((1 << 16) - 1)
            for v in range(graph.num_nodes):
                lit = int(graph.source_lit[v])
                expect = int(aig_vals[lit >> 1, 0])
                if lit & 1:
                    expect ^= 0xFFFFFFFFFFFFFFFF
                assert (int(graph_vals[v, 0]) & int(mask)) == (expect & int(mask))

    def test_input_shape_checked(self):
        b = AIGBuilder(num_pis=2)
        b.add_output(b.add_and(b.pi_lit(0), b.pi_lit(1)))
        g = b.build().to_gate_graph()
        with pytest.raises(ValueError, match="input rows"):
            simulate_gate_graph(g, np.zeros((1, 1), dtype=np.uint64))
