"""Tests for bit-parallel simulation."""

import numpy as np
import pytest

from repro.aig import AIGBuilder, lit_negate
from repro.sim import (
    exhaustive_patterns,
    output_values,
    popcount,
    random_patterns,
    simulate_aig,
    simulate_gate_graph,
)
from repro.synth import netlist_to_aig

from ..helpers import random_netlist


class TestPatterns:
    def test_random_patterns_shape(self):
        pats = random_patterns(5, 1000, np.random.default_rng(0))
        assert pats.shape == (5, 16)  # ceil(1000/64)
        assert pats.dtype == np.uint64

    def test_exhaustive_small(self):
        pats = exhaustive_patterns(2)
        assert pats.shape == (2, 1)
        # variable 0 toggles every pattern, variable 1 every 2 patterns
        assert int(pats[0, 0]) & 0xF == 0b1010
        assert int(pats[1, 0]) & 0xF == 0b1100

    def test_exhaustive_multiword(self):
        pats = exhaustive_patterns(7)  # 128 patterns, 2 words
        assert pats.shape == (7, 2)
        # each input must be 1 in exactly half the patterns
        assert (popcount(pats) == 64).all()

    def test_exhaustive_limit(self):
        with pytest.raises(ValueError, match="26"):
            exhaustive_patterns(30)

    def test_popcount(self):
        arr = np.array([[0, 1, 0xFF, 2**64 - 1]], dtype=np.uint64)
        assert popcount(arr)[0] == 0 + 1 + 8 + 64


class TestSimulateAig:
    def test_and_gate(self):
        b = AIGBuilder(num_pis=2)
        g = b.add_and(b.pi_lit(0), b.pi_lit(1))
        b.add_output(g)
        aig = b.build()
        vals = simulate_aig(aig, exhaustive_patterns(2))
        assert int(vals[g >> 1, 0]) & 0xF == 0b1000

    def test_constant_row_is_zero(self):
        b = AIGBuilder(num_pis=1)
        b.add_output(b.pi_lit(0))
        vals = simulate_aig(b.build(), exhaustive_patterns(1))
        assert vals[0, 0] == 0

    def test_output_values_complement(self):
        b = AIGBuilder(num_pis=1)
        b.add_output(lit_negate(b.pi_lit(0)))
        aig = b.build()
        vals = simulate_aig(aig, exhaustive_patterns(1))
        outs = output_values(aig, vals)
        assert int(outs[0, 0]) & 0b11 == 0b01  # !a over patterns a=0, a=1

    def test_input_shape_checked(self):
        b = AIGBuilder(num_pis=3)
        b.add_output(b.pi_lit(0))
        with pytest.raises(ValueError, match="input rows"):
            simulate_aig(b.build(), np.zeros((2, 1), dtype=np.uint64))

    def test_matches_netlist_evaluation(self):
        """AIG simulation must agree with direct netlist evaluation."""
        rng = np.random.default_rng(42)
        for _ in range(10):
            nl = random_netlist(rng, num_inputs=4, num_gates=15)
            aig = netlist_to_aig(nl)
            pats = exhaustive_patterns(4)
            aig_out = output_values(aig, simulate_aig(aig, pats))
            net_vals = nl.evaluate(
                {name: pats[k] for k, name in enumerate(nl.inputs)}
            )
            mask = np.uint64((1 << 16) - 1)
            for k, out_name in enumerate(nl.outputs):
                assert (net_vals[out_name][0] & mask) == (aig_out[k, 0] & mask)


class TestSimulateGateGraph:
    def test_matches_aig_semantics(self):
        rng = np.random.default_rng(77)
        for _ in range(10):
            nl = random_netlist(rng, num_inputs=4, num_gates=15)
            from repro.synth import synthesize, has_constant_outputs

            aig = synthesize(nl)
            if has_constant_outputs(aig):
                continue
            graph = aig.to_gate_graph()
            pats = exhaustive_patterns(4)
            aig_vals = simulate_aig(aig, pats)
            graph_vals = simulate_gate_graph(graph, pats)
            mask = np.uint64((1 << 16) - 1)
            for v in range(graph.num_nodes):
                lit = int(graph.source_lit[v])
                expect = int(aig_vals[lit >> 1, 0])
                if lit & 1:
                    expect ^= 0xFFFFFFFFFFFFFFFF
                assert (int(graph_vals[v, 0]) & int(mask)) == (expect & int(mask))

    def test_input_shape_checked(self):
        b = AIGBuilder(num_pis=2)
        b.add_output(b.add_and(b.pi_lit(0), b.pi_lit(1)))
        g = b.build().to_gate_graph()
        with pytest.raises(ValueError, match="input rows"):
            simulate_gate_graph(g, np.zeros((1, 1), dtype=np.uint64))
