"""Tests for fanout-stem and reconvergence analysis."""

import numpy as np
import pytest

from repro.aig import AIGBuilder, lit_negate
from repro.sim import fanout_stems, find_reconvergences
from repro.synth import has_constant_outputs, synthesize

from ..helpers import random_netlist


def diamond_graph():
    """PI fans out into two AND branches that reconverge."""
    b = AIGBuilder(num_pis=3)
    s = b.pi_lit(0)  # the stem
    left = b.add_and(s, b.pi_lit(1))
    right = b.add_and(s, b.pi_lit(2))
    top = b.add_and(left, right)
    b.add_output(top)
    return b.build("diamond").to_gate_graph()


def tree_graph():
    """Fanout-free tree: no stems, no reconvergence."""
    b = AIGBuilder(num_pis=4)
    g1 = b.add_and(b.pi_lit(0), b.pi_lit(1))
    g2 = b.add_and(b.pi_lit(2), b.pi_lit(3))
    b.add_output(b.add_and(g1, g2))
    return b.build("tree").to_gate_graph()


class TestFanoutStems:
    def test_tree_has_no_stems(self):
        assert fanout_stems(tree_graph()).size == 0

    def test_diamond_stem_found(self):
        g = diamond_graph()
        stems = fanout_stems(g)
        assert len(stems) == 1
        assert g.node_type[stems[0]] == 0  # the PI


class TestFindReconvergences:
    def test_tree_has_none(self):
        assert find_reconvergences(tree_graph()) == []

    def test_diamond_detected(self):
        g = diamond_graph()
        edges = find_reconvergences(g)
        assert len(edges) == 1
        e = edges[0]
        stem = fanout_stems(g)[0]
        assert e.source == stem
        # target is the top AND where the two branches meet
        assert g.node_type[e.target] == 1
        assert e.level_diff == int(g.levels()[e.target])

    def test_level_diff_positive(self):
        rng = np.random.default_rng(3)
        for _ in range(10):
            aig = synthesize(random_netlist(rng, num_inputs=4, num_gates=20))
            if has_constant_outputs(aig) or aig.num_ands == 0:
                continue
            g = aig.to_gate_graph()
            for e in find_reconvergences(g):
                assert e.level_diff >= 2
                assert int(g.levels()[e.target]) - int(g.levels()[e.source]) == e.level_diff

    def test_nearest_source_is_max_level(self):
        """Nested diamonds: inner stem must win over outer stem."""
        b = AIGBuilder(num_pis=3)
        outer = b.pi_lit(0)
        inner = b.add_and(outer, b.pi_lit(1))  # fans out below
        l1 = b.add_and(inner, b.pi_lit(2))
        l2 = b.add_and(inner, lit_negate(b.pi_lit(2)))
        top = b.add_and(l1, l2)
        b.add_output(top)
        b.add_output(outer)  # make the PI a stem too? (already via inner+output)
        g = b.build().to_gate_graph()
        edges = {e.target: e for e in find_reconvergences(g)}
        lv = g.levels()
        top_node = int(np.argmax(lv))
        assert top_node in edges
        # nearest stem to the top AND is the shared inner AND, not the PI
        src = edges[top_node].source
        assert g.node_type[src] == 1

    def test_mode_all_superset_of_nearest(self):
        rng = np.random.default_rng(17)
        for _ in range(5):
            aig = synthesize(random_netlist(rng, num_inputs=4, num_gates=25))
            if has_constant_outputs(aig) or aig.num_ands == 0:
                continue
            g = aig.to_gate_graph()
            near = {(e.source, e.target) for e in find_reconvergences(g, "nearest")}
            full = {(e.source, e.target) for e in find_reconvergences(g, "all")}
            assert near <= full
            near_targets = {t for _, t in near}
            full_targets = {t for _, t in full}
            assert near_targets == full_targets

    def test_max_level_diff_filter(self):
        g = diamond_graph()
        assert find_reconvergences(g, max_level_diff=1) == []
        assert len(find_reconvergences(g, max_level_diff=10)) == 1

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            find_reconvergences(diamond_graph(), mode="bogus")

    def test_matches_bruteforce_path_semantics(self):
        """Cross-check against brute-force closed-cone intersection."""
        rng = np.random.default_rng(29)
        for _ in range(8):
            aig = synthesize(random_netlist(rng, num_inputs=4, num_gates=18))
            if has_constant_outputs(aig) or aig.num_ands == 0:
                continue
            g = aig.to_gate_graph()
            expected = _bruteforce_pairs(g)
            got = {(e.source, e.target) for e in find_reconvergences(g, "all")}
            assert got == expected

    def test_batching_boundary(self):
        """Results identical across stem batch sizes (incl. size 1)."""
        rng = np.random.default_rng(31)
        aig = synthesize(random_netlist(rng, num_inputs=5, num_gates=40))
        if has_constant_outputs(aig) or aig.num_ands == 0:
            pytest.skip("degenerate circuit")
        g = aig.to_gate_graph()
        a = find_reconvergences(g, "all", stem_batch=1)
        b = find_reconvergences(g, "all", stem_batch=4096)
        assert a == b


def _bruteforce_pairs(graph):
    """All (stem, node) reconvergence pairs via explicit cone sets."""
    fanins = graph.fanin_lists()
    counts = np.zeros(graph.num_nodes, dtype=int)
    for u, _ in graph.edges:
        counts[u] += 1
    stems = {v for v in range(graph.num_nodes) if counts[v] >= 2}
    cones = []  # closed fan-in cone per node
    pairs = set()
    for v in range(graph.num_nodes):
        cone = {v}
        for p in fanins[v]:
            cone |= cones[p]
        cones.append(cone)
        if len(fanins[v]) == 2:
            p, q = fanins[v]
            both = cones[p] & cones[q] & stems
            for s in both:
                pairs.add((s, v))
    return pairs
