"""Smoke-level lock on every built-in experiment's unit decomposition.

Each registered experiment — the six table/figure ports plus the four
promoted example workloads — runs end to end through the unit executor with a
narrowed seconds-fast spec, pinning: the unit count, per-unit cache
directories on disk, well-formed result rows, and run-level cache hits
on re-execution.  (Worker-count byte-determinism is pinned separately in
``test_determinism.py``.)
"""

import pytest

from repro.runtime import execute_parallel, get_experiment, spec_from_overrides
from repro.runtime.parallel import UNITS_DIR_NAME

#: experiment -> (narrowed overrides, expected unit count, a key of its rows)
CASES = {
    "table1": ({"scale": "smoke"}, 4, "suite"),
    "table2": (
        {"scale": "smoke", "epochs": "1", "models": "gcn/conv_sum,dag_rec/deepset"},
        2,
        "model",
    ),
    "table3": ({"scale": "smoke", "epochs": "1"}, 2, "design"),
    "table4": ({"scale": "smoke", "epochs": "1", "suites": "EPFL"}, 1, "suite"),
    "tsweep": (
        {
            "scale": "smoke",
            "epochs": "1",
            "t_values": "1,2",
            "train_iterations": "2",
        },
        2,
        "T",
    ),
    "ablations": ({"scale": "smoke", "epochs": "1", "which": "cop"}, 1, "ablation"),
    "testability_analysis": (
        {"scale": "smoke", "epochs": "1", "designs": "mux_tree:3"},
        1,
        "design",
    ),
    "downstream_fault_prediction": (
        {"scale": "smoke", "epochs": "1", "designs": "alu:4"},
        1,
        "design",
    ),
    "synth_robustness": (
        {"scale": "smoke", "epochs": "1", "designs": "mux_tree:3"},
        1,
        "design",
    ),
    "sat_oracle": (
        {"scale": "smoke", "designs": "parity:8,mux_tree:2"},
        2,
        "design",
    ),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_unit_decomposition_end_to_end(name, tmp_path):
    overrides, expected_units, row_key = CASES[name]
    exp = get_experiment(name)
    spec = spec_from_overrides(exp.spec_type, overrides)

    assert exp.supports_units
    units = exp.units(spec)
    assert len(units) == expected_units
    assert len({u.key for u in units}) == expected_units  # keys are unique

    events = []
    record = execute_parallel(
        name, spec, runs_dir=tmp_path, workers=1, progress=events.append
    )
    assert not record.cache_hit
    assert record.result["rows"], name
    assert all(row_key in row for row in record.result["rows"])
    assert [e["key"] for e in events] == [u.key for u in units]
    assert all(e["status"] == "done" for e in events)

    units_dir = record.out_dir / UNITS_DIR_NAME
    assert len(list(units_dir.iterdir())) == expected_units
    assert (record.out_dir / "report.md").is_file()

    again = execute_parallel(name, spec, runs_dir=tmp_path, workers=1)
    assert again.cache_hit
    assert again.result == record.result
