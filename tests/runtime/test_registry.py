"""Tests for the experiment registry, specs and override coercion."""

from dataclasses import dataclass
from typing import Optional, Tuple

import pytest

from repro.runtime import (
    ExperimentResult,
    ExperimentSpec,
    experiment,
    get_experiment,
    list_experiments,
    spec_from_overrides,
)
from repro.runtime import registry as registry_module


class TestBuiltinRegistrations:
    def test_all_six_experiments_registered(self):
        names = {e.name for e in list_experiments()}
        assert names >= {
            "table1",
            "table2",
            "table3",
            "table4",
            "tsweep",
            "ablations",
        }

    def test_get_experiment_metadata(self):
        exp = get_experiment("table2")
        assert "Table II" in exp.title
        assert exp.spec_type().scale == "default"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("table99")

    def test_specs_are_frozen(self):
        spec = get_experiment("table1").spec_type()
        with pytest.raises(Exception):
            spec.scale = "paper"


class TestDecorator:
    def test_register_run_unregister(self):
        @dataclass(frozen=True)
        class FakeSpec(ExperimentSpec):
            knob: int = 3

        @experiment("fake-exp", spec=FakeSpec, title="Fake")
        def run_fake(spec):
            return ExperimentResult(
                experiment="fake-exp",
                rows=[{"knob": spec.knob}],
                table=f"knob={spec.knob}",
            )

        try:
            exp = get_experiment("fake-exp")
            result = exp.run(FakeSpec(knob=7))
            assert result.rows == [{"knob": 7}]

            # a *different* function under the same name is a collision...
            def other_runner(spec):  # pragma: no cover - never called
                return None

            with pytest.raises(ValueError, match="already registered"):
                experiment("fake-exp", spec=FakeSpec, title="dup")(other_runner)
            # ...but re-registering the same source function is idempotent
            # (runpy re-executes module decorators under ``__main__``)
            experiment("fake-exp", spec=FakeSpec, title="Fake")(run_fake)
            with pytest.raises(TypeError, match="takes a FakeSpec"):
                exp.run(ExperimentSpec())
        finally:
            registry_module.unregister("fake-exp")

    def test_non_frozen_spec_rejected(self):
        # (a non-frozen subclass of the frozen base is a TypeError at class
        # definition, so use an unrelated mutable dataclass)
        @dataclass
        class Mutable:
            scale: str = "default"

        with pytest.raises(TypeError, match="frozen"):
            experiment("bad", spec=Mutable, title="bad")(lambda s: None)


class TestResultEmitters:
    def test_to_json(self):
        r = ExperimentResult("x", rows=[{"a": 1}], table="t", meta={"k": 2})
        assert r.to_json() == {
            "experiment": "x",
            "rows": [{"a": 1}],
            "meta": {"k": 2},
        }

    def test_to_markdown_pipe_table(self):
        r = ExperimentResult(
            "x", rows=[{"a": 1, "b": 0.5}, {"a": 2, "b": 0.25}], table="plain"
        )
        md = r.to_markdown()
        assert "| a | b |" in md
        assert "| 2 | 0.2500 |" in md
        assert "plain" in md

    def test_to_markdown_no_rows(self):
        md = ExperimentResult("x", rows=[], table="empty").to_markdown()
        assert md.startswith("```")


class TestOverrideCoercion:
    @dataclass(frozen=True)
    class Spec(ExperimentSpec):
        frac: float = 0.9
        names: Tuple[str, ...] = ()
        counts: Tuple[int, ...] = (1, 2)
        flag: bool = False
        limit: Optional[int] = None

    def test_scalar_coercion(self):
        spec = spec_from_overrides(
            self.Spec,
            {"scale": "smoke", "frac": "0.5", "flag": "true", "limit": "7"},
        )
        assert spec.scale == "smoke"
        assert spec.frac == 0.5
        assert spec.flag is True
        assert spec.limit == 7

    def test_tuple_coercion(self):
        spec = spec_from_overrides(
            self.Spec, {"names": "a,b", "counts": "3,4,5"}
        )
        assert spec.names == ("a", "b")
        assert spec.counts == (3, 4, 5)

    def test_optional_none(self):
        spec = spec_from_overrides(self.Spec, {"seed": "none"})
        assert spec.seed is None

    def test_optional_value(self):
        spec = spec_from_overrides(self.Spec, {"seed": "42"})
        assert spec.seed == 42

    def test_unknown_field(self):
        with pytest.raises(ValueError, match="no field"):
            spec_from_overrides(self.Spec, {"bogus": "1"})

    def test_bad_bool(self):
        with pytest.raises(ValueError, match="boolean"):
            spec_from_overrides(self.Spec, {"flag": "maybe"})
