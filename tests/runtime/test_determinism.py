"""Worker-count and resume determinism of real experiments.

The runtime's core promise: for a unit-decomposed experiment,
``--workers 1``, ``--workers 4`` and a resumed-after-kill run all write
byte-identical ``result.json``.  Exercised end to end on two real
experiments at smoke scale (table1 is dataset-stats only; table2 is
narrowed to two model configs and one epoch so each run trains in
seconds).
"""

import shutil

import pytest

from repro.runtime import execute_parallel, get_experiment, spec_from_overrides
from repro.runtime.parallel import UNITS_DIR_NAME
from repro.runtime.runner import MANIFEST_NAME

#: experiment -> CLI-style overrides keeping the grid seconds-fast
CASES = {
    "table1": {"scale": "smoke"},
    "table2": {
        "scale": "smoke",
        "epochs": "1",
        "models": "gcn/conv_sum,deepgate/attention/sc",
    },
}


def _spec(name):
    exp = get_experiment(name)
    return spec_from_overrides(exp.spec_type, CASES[name])


def _result_bytes(record):
    return (record.out_dir / "result.json").read_bytes()


@pytest.fixture(scope="module", params=sorted(CASES))
def serial_run(request, tmp_path_factory):
    """The --workers 1 reference run for one experiment."""
    name = request.param
    runs = tmp_path_factory.mktemp(f"{name}-serial")
    record = execute_parallel(name, _spec(name), runs_dir=runs, workers=1)
    return name, record


class TestWorkerCountDeterminism:
    def test_workers_4_matches_workers_1(self, serial_run, tmp_path):
        name, reference = serial_run
        parallel = execute_parallel(
            name, _spec(name), runs_dir=tmp_path, workers=4
        )
        assert not parallel.cache_hit
        assert _result_bytes(parallel) == _result_bytes(reference)

    def test_resumed_after_kill_matches(self, serial_run, tmp_path):
        """Kill simulation: completed unit caches survive, the manifest
        does not; the resumed run recomputes only the lost unit and
        still emits identical bytes."""
        name, reference = serial_run
        record = execute_parallel(
            name, _spec(name), runs_dir=tmp_path, workers=2
        )
        reference_bytes = _result_bytes(record)
        assert reference_bytes == _result_bytes(reference)

        (record.out_dir / MANIFEST_NAME).unlink()
        unit_dirs = sorted((record.out_dir / UNITS_DIR_NAME).iterdir())
        assert len(unit_dirs) >= 2
        shutil.rmtree(unit_dirs[0])

        events = []
        resumed = execute_parallel(
            name,
            _spec(name),
            runs_dir=tmp_path,
            workers=2,
            progress=events.append,
        )
        assert not resumed.cache_hit
        assert _result_bytes(resumed) == reference_bytes
        statuses = sorted(e["status"] for e in events)
        # exactly one unit re-ran; the rest loaded from their cache dirs
        assert statuses.count("done") == 1
        assert statuses.count("cached") == len(unit_dirs) - 1
