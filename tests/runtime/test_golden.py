"""Golden-fixture subsystem: capture, schema validation, drift gate.

Mirrors the corrupt-run-dir robustness suites from the runner tests: a
fixture that is corrupted, truncated, carries the wrong schema version,
or whose recorded spec no longer reproduces its hash must be rejected
with a clear :class:`GoldenError` — never a bare ``KeyError`` mid-verify.
The capture -> verify round trip and the drift/missing failure modes run
on the cheap fake grid experiment from ``tests.helpers``.
"""

import json

import pytest

from repro.runtime import execute_parallel
from repro.runtime import registry as registry_module
from repro.runtime.golden import (
    GOLDEN_FORMAT_VERSION,
    Golden,
    GoldenError,
    GoldenMetric,
    capture_golden,
    default_goldens_dir,
    default_tolerance,
    golden_path,
    list_golden_paths,
    load_golden,
    render_report_markdown,
    render_report_text,
    result_metrics,
    verify_golden,
    write_golden,
)

from ..helpers import GridSpec, register_grid_experiment


@pytest.fixture
def grid_run(tmp_path):
    """One cached run of the fake grid experiment + its runs root."""
    name = register_grid_experiment("fake-grid")
    try:
        record = execute_parallel(
            name, GridSpec(factor=2), runs_dir=tmp_path / "runs"
        )
        yield tmp_path, record
    finally:
        registry_module.unregister(name)


def roundtrip_fixture(tmp_path, record):
    golden = capture_golden(record)
    path = write_golden(golden, goldens_dir=tmp_path / "goldens")
    return golden, path


class TestCapture:
    def test_metrics_cover_every_numeric_cell(self, grid_run):
        _, record = grid_run
        golden = capture_golden(record)
        assert [(m.row, m.metric) for m in golden.metrics] == [
            ("alpha", "value"),
            ("beta", "value"),
            ("gamma", "value"),
        ]
        assert golden.experiment == record.experiment
        assert golden.spec_hash == record.spec_hash
        assert golden.spec == record.spec

    def test_int_metrics_get_zero_tolerance(self, grid_run):
        _, record = grid_run
        golden = capture_golden(record)
        # the grid's values are ints: exact reproduction required
        assert all(m.tolerance == 0.0 for m in golden.metrics)

    def test_default_tolerance_derivation(self):
        assert default_tolerance(7) == 0.0
        assert default_tolerance(0.5, rel=0.1, floor=0.02) == pytest.approx(
            0.05
        )
        # near zero the floor wins
        assert default_tolerance(0.001, rel=0.1, floor=0.02) == 0.02

    def test_overrides_beat_derived_defaults(self, grid_run):
        _, record = grid_run
        golden = capture_golden(
            record, overrides={"value": 3.0, "beta:value": 1.0}
        )
        by_row = {m.row: m.tolerance for m in golden.metrics}
        assert by_row["alpha"] == 3.0
        assert by_row["beta"] == 1.0  # row-qualified wins

    def test_rowless_results_rejected(self, grid_run):
        _, record = grid_run
        record.result = {"rows": []}
        with pytest.raises(GoldenError, match="no result rows"):
            capture_golden(record)

    def test_result_metrics_disambiguates_duplicate_labels(self):
        rows = [{"name": "x", "v": 1.0}, {"name": "x", "v": 2.0}]
        assert result_metrics(rows) == [("x", "v", 1.0), ("x #2", "v", 2.0)]


class TestWriteLoad:
    def test_roundtrip(self, grid_run):
        tmp_path, record = grid_run
        golden, path = roundtrip_fixture(tmp_path, record)
        assert path == golden_path(
            tmp_path / "goldens", record.experiment, record.spec_hash
        )
        loaded = load_golden(path)
        assert loaded.experiment == golden.experiment
        assert loaded.spec_hash == golden.spec_hash
        assert loaded.metrics == golden.metrics
        assert loaded.path == path

    def test_list_golden_paths(self, grid_run):
        tmp_path, record = grid_run
        _, path = roundtrip_fixture(tmp_path, record)
        assert list_golden_paths(tmp_path / "goldens") == [path]
        assert list_golden_paths(tmp_path / "absent") == []

    def test_default_goldens_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_GOLDENS_DIR", str(tmp_path / "g"))
        assert default_goldens_dir() == tmp_path / "g"
        monkeypatch.delenv("REPRO_GOLDENS_DIR")
        assert str(default_goldens_dir()) == "goldens"


class TestSchemaValidation:
    """Every reachable bad-fixture state raises a *named* GoldenError."""

    def test_unreadable_file(self, tmp_path):
        with pytest.raises(GoldenError, match="unreadable"):
            load_golden(tmp_path / "missing.json")

    def test_corrupt_json(self, grid_run):
        tmp_path, record = grid_run
        _, path = roundtrip_fixture(tmp_path, record)
        path.write_text("{nope")
        with pytest.raises(GoldenError, match="corrupt or truncated"):
            load_golden(path)

    def test_truncated_json(self, grid_run):
        tmp_path, record = grid_run
        _, path = roundtrip_fixture(tmp_path, record)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(GoldenError, match="corrupt or truncated"):
            load_golden(path)

    def test_non_object_payload(self, grid_run):
        tmp_path, record = grid_run
        _, path = roundtrip_fixture(tmp_path, record)
        path.write_text("[1, 2, 3]")
        with pytest.raises(GoldenError, match="not a JSON object"):
            load_golden(path)

    def test_wrong_schema_version(self, grid_run):
        tmp_path, record = grid_run
        _, path = roundtrip_fixture(tmp_path, record)
        data = json.loads(path.read_text())
        data["golden_format_version"] = GOLDEN_FORMAT_VERSION + 1
        path.write_text(json.dumps(data))
        with pytest.raises(GoldenError, match="golden_format_version"):
            load_golden(path)

    @pytest.mark.parametrize(
        "mutation, message",
        [
            (lambda d: d.pop("experiment"), "experiment"),
            (lambda d: d.pop("spec"), "spec"),
            (lambda d: d.update(spec_hash="short"), "spec_hash"),
            (lambda d: d.update(metrics=[]), "metrics"),
            (lambda d: d.update(metrics=["x"]), r"metrics\[0\]"),
            (
                lambda d: d["metrics"][0].pop("value"),
                "non-numeric 'value'",
            ),
            (
                lambda d: d["metrics"][0].update(tolerance=-1),
                "tolerance >= 0",
            ),
        ],
    )
    def test_malformed_fields(self, grid_run, mutation, message):
        tmp_path, record = grid_run
        _, path = roundtrip_fixture(tmp_path, record)
        data = json.loads(path.read_text())
        mutation(data)
        path.write_text(json.dumps(data))
        with pytest.raises(GoldenError, match=message):
            load_golden(path)

    def test_stale_spec_hash(self, grid_run):
        """A hand-edited spec no longer reproduces the recorded hash."""
        tmp_path, record = grid_run
        _, path = roundtrip_fixture(tmp_path, record)
        data = json.loads(path.read_text())
        data["spec"]["factor"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(GoldenError, match="stale spec hash"):
            load_golden(path)

    def test_error_names_the_file(self, grid_run):
        tmp_path, record = grid_run
        _, path = roundtrip_fixture(tmp_path, record)
        path.write_text("{nope")
        with pytest.raises(GoldenError, match=path.name):
            load_golden(path)


class TestVerify:
    def test_clean_verify_passes_from_run_cache(self, grid_run):
        tmp_path, record = grid_run
        golden, path = roundtrip_fixture(tmp_path, record)
        report = verify_golden(load_golden(path), runs_dir=tmp_path / "runs")
        assert report.passed
        assert report.record.cache_hit  # same spec -> same run dir
        assert all(c.status == "ok" for c in report.checks)
        assert report.failures == []

    def test_clean_verify_passes_on_fresh_rerun(self, grid_run):
        tmp_path, record = grid_run
        golden, path = roundtrip_fixture(tmp_path, record)
        report = verify_golden(
            load_golden(path), runs_dir=tmp_path / "fresh-runs"
        )
        assert report.passed
        assert not report.record.cache_hit

    def test_drift_beyond_tolerance_fails(self, grid_run):
        tmp_path, record = grid_run
        golden, path = roundtrip_fixture(tmp_path, record)
        data = json.loads(path.read_text())
        for m in data["metrics"]:
            if m["row"] == "beta":
                m["value"] = m["value"] + 5  # tolerance is 0
        path.write_text(json.dumps(data, sort_keys=True))
        report = verify_golden(load_golden(path), runs_dir=tmp_path / "runs")
        assert not report.passed
        assert [(c.row, c.status) for c in report.failures] == [
            ("beta", "drift")
        ]

    def test_drift_within_tolerance_passes(self, grid_run):
        tmp_path, record = grid_run
        golden = capture_golden(record, overrides={"value": 10.0})
        path = write_golden(golden, goldens_dir=tmp_path / "goldens")
        data = json.loads(path.read_text())
        data["metrics"][0]["value"] += 5  # within the 10.0 limit
        path.write_text(json.dumps(data, sort_keys=True))
        report = verify_golden(load_golden(path), runs_dir=tmp_path / "runs")
        assert report.passed

    def test_vanished_metric_fails_as_missing(self, grid_run):
        tmp_path, record = grid_run
        golden, path = roundtrip_fixture(tmp_path, record)
        data = json.loads(path.read_text())
        data["metrics"].append(
            {"row": "alpha", "metric": "gone", "value": 1.0, "tolerance": 9.0}
        )
        path.write_text(json.dumps(data, sort_keys=True))
        report = verify_golden(load_golden(path), runs_dir=tmp_path / "runs")
        assert not report.passed
        assert report.failures[0].status == "missing"
        assert report.failures[0].new is None

    def test_unknown_experiment_is_golden_error(self, tmp_path):
        golden = Golden(
            experiment="never-registered",
            spec={"scale": "smoke", "seed": None, "epochs": None},
            spec_hash="0" * 64,
            metrics=[GoldenMetric("x", "v", 1.0, 0.0)],
        )
        with pytest.raises(GoldenError, match="never-registered"):
            verify_golden(golden, runs_dir=tmp_path)

    def test_stale_spec_field_is_golden_error(self, grid_run):
        """A spec naming a field the current spec type lacks is stale."""
        tmp_path, record = grid_run
        golden, path = roundtrip_fixture(tmp_path, record)
        loaded = load_golden(path)
        loaded.spec = dict(loaded.spec, vanished_knob=1)
        with pytest.raises(GoldenError, match="re-baseline"):
            verify_golden(loaded, runs_dir=tmp_path / "runs")

    def test_report_json_and_renderers(self, grid_run):
        tmp_path, record = grid_run
        golden, path = roundtrip_fixture(tmp_path, record)
        report = verify_golden(load_golden(path), runs_dir=tmp_path / "runs")
        payload = report.to_json()
        assert payload["passed"] is True
        assert json.loads(json.dumps(payload)) == payload
        text = render_report_text(report)
        assert "PASS" in text and "alpha" in text
        md = render_report_markdown(report)
        assert "| row | metric | golden | new | delta | limit | status |" in md
