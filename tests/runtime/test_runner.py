"""Tests for run directories, manifests and cache semantics."""

import json
from dataclasses import dataclass

import pytest

from repro.runtime import (
    ExperimentResult,
    ExperimentSpec,
    execute,
    experiment,
    list_runs,
    load_record,
    spec_hash,
)
from repro.runtime import registry as registry_module
from repro.runtime.runner import MANIFEST_NAME


@dataclass(frozen=True)
class CountingSpec(ExperimentSpec):
    knob: int = 1


@pytest.fixture
def counting_experiment():
    """A cheap registered experiment that counts its executions."""
    calls = {"n": 0}

    @experiment("counting", spec=CountingSpec, title="Counting experiment")
    def run_counting(spec):
        calls["n"] += 1
        return ExperimentResult(
            experiment="counting",
            rows=[{"knob": spec.knob, "call": calls["n"]}],
            table=f"knob={spec.knob} call={calls['n']}",
        )

    try:
        yield calls
    finally:
        registry_module.unregister("counting")


class TestSpecHash:
    def test_stable(self):
        assert spec_hash("x", CountingSpec()) == spec_hash("x", CountingSpec())

    def test_sensitive_to_spec_and_name(self):
        base = spec_hash("x", CountingSpec())
        assert spec_hash("x", CountingSpec(knob=2)) != base
        assert spec_hash("y", CountingSpec()) != base
        assert spec_hash("x", CountingSpec(scale="smoke")) != base


class TestExecute:
    def test_first_run_writes_artifacts(self, tmp_path, counting_experiment):
        record = execute("counting", runs_dir=tmp_path)
        assert not record.cache_hit
        assert (record.out_dir / MANIFEST_NAME).is_file()
        assert (record.out_dir / "result.json").is_file()
        assert (record.out_dir / "report.txt").is_file()
        assert (record.out_dir / "report.md").is_file()
        manifest = json.loads((record.out_dir / MANIFEST_NAME).read_text())
        assert manifest["status"] == "complete"
        assert manifest["spec_hash"] == record.spec_hash

    def test_second_run_is_cache_hit(self, tmp_path, counting_experiment):
        first = execute("counting", runs_dir=tmp_path)
        second = execute("counting", runs_dir=tmp_path)
        assert not first.cache_hit
        assert second.cache_hit
        assert counting_experiment["n"] == 1  # ran exactly once
        assert second.result == first.result
        assert second.report == first.report

    def test_different_spec_different_dir(self, tmp_path, counting_experiment):
        a = execute("counting", CountingSpec(knob=1), runs_dir=tmp_path)
        b = execute("counting", CountingSpec(knob=2), runs_dir=tmp_path)
        assert a.out_dir != b.out_dir
        assert counting_experiment["n"] == 2

    def test_force_reruns(self, tmp_path, counting_experiment):
        execute("counting", runs_dir=tmp_path)
        record = execute("counting", runs_dir=tmp_path, force=True)
        assert not record.cache_hit
        assert counting_experiment["n"] == 2

    def test_missing_artifact_invalidates(self, tmp_path, counting_experiment):
        record = execute("counting", runs_dir=tmp_path)
        (record.out_dir / "result.json").unlink()
        again = execute("counting", runs_dir=tmp_path)
        assert not again.cache_hit
        assert counting_experiment["n"] == 2

    def test_corrupt_manifest_invalidates(self, tmp_path, counting_experiment):
        record = execute("counting", runs_dir=tmp_path)
        (record.out_dir / MANIFEST_NAME).write_text("{not json")
        again = execute("counting", runs_dir=tmp_path)
        assert not again.cache_hit
        assert counting_experiment["n"] == 2

    def test_forced_rerun_drops_manifest_before_writing(
        self, tmp_path, counting_experiment, monkeypatch
    ):
        """An interrupted --force re-run must not look complete."""
        record = execute("counting", runs_dir=tmp_path)

        import repro.runtime.runner as runner_module

        def explode(path, text):
            raise RuntimeError("killed mid-write")

        monkeypatch.setattr(runner_module, "_write_text", explode)
        with pytest.raises(RuntimeError, match="killed mid-write"):
            execute("counting", runs_dir=tmp_path, force=True)
        monkeypatch.undo()

        # the stale manifest is gone, so the directory is not a cache hit
        assert not (record.out_dir / MANIFEST_NAME).is_file()
        again = execute("counting", runs_dir=tmp_path)
        assert not again.cache_hit

    def test_markdown_artifact_contains_table(self, tmp_path, counting_experiment):
        record = execute("counting", runs_dir=tmp_path)
        assert "| knob | call |" in record.markdown


class TestLoadAndList:
    def test_load_record_roundtrip(self, tmp_path, counting_experiment):
        execute("counting", CountingSpec(knob=3), runs_dir=tmp_path)
        record = load_record("counting", CountingSpec(knob=3), runs_dir=tmp_path)
        assert record is not None
        assert record.cache_hit
        assert record.result["rows"] == [{"knob": 3, "call": 1}]

    def test_load_record_missing(self, tmp_path, counting_experiment):
        assert load_record("counting", runs_dir=tmp_path) is None

    def test_list_runs(self, tmp_path, counting_experiment):
        assert list_runs(tmp_path) == []
        execute("counting", CountingSpec(knob=1), runs_dir=tmp_path)
        execute("counting", CountingSpec(knob=2), runs_dir=tmp_path)
        manifests = list_runs(tmp_path)
        assert len(manifests) == 2
        assert all(m["experiment"] == "counting" for m in manifests)

    def test_list_runs_skips_incomplete(self, tmp_path, counting_experiment):
        record = execute("counting", runs_dir=tmp_path)
        (record.out_dir / "report.txt").unlink()
        assert list_runs(tmp_path) == []


class TestCorruptRunDirectories:
    """Corrupt or partial run directories are cache misses, never errors."""

    def test_truncated_result_json_is_cache_miss(
        self, tmp_path, counting_experiment
    ):
        record = execute("counting", runs_dir=tmp_path)
        full = (record.out_dir / "result.json").read_text()
        (record.out_dir / "result.json").write_text(full[: len(full) // 2])
        assert load_record("counting", runs_dir=tmp_path) is None
        again = execute("counting", runs_dir=tmp_path)
        assert not again.cache_hit
        assert counting_experiment["n"] == 2

    def test_empty_result_json_is_cache_miss(
        self, tmp_path, counting_experiment
    ):
        record = execute("counting", runs_dir=tmp_path)
        (record.out_dir / "result.json").write_text("")
        assert load_record("counting", runs_dir=tmp_path) is None

    def test_missing_manifest_is_cache_miss(
        self, tmp_path, counting_experiment
    ):
        record = execute("counting", runs_dir=tmp_path)
        (record.out_dir / MANIFEST_NAME).unlink()
        assert load_record("counting", runs_dir=tmp_path) is None
        assert list_runs(tmp_path) == []

    def test_non_object_manifest_is_cache_miss(
        self, tmp_path, counting_experiment
    ):
        # valid JSON, wrong shape: must read as "no manifest" everywhere
        record = execute("counting", runs_dir=tmp_path)
        (record.out_dir / MANIFEST_NAME).write_text('["not", "a", "dict"]')
        assert load_record("counting", runs_dir=tmp_path) is None
        assert list_runs(tmp_path) == []
        again = execute("counting", runs_dir=tmp_path)
        assert not again.cache_hit

    def test_corrupt_manifest_skipped_by_list_runs(
        self, tmp_path, counting_experiment
    ):
        good = execute("counting", CountingSpec(knob=1), runs_dir=tmp_path)
        bad = execute("counting", CountingSpec(knob=2), runs_dir=tmp_path)
        (bad.out_dir / MANIFEST_NAME).write_text("{truncated")
        manifests = list_runs(tmp_path)
        assert len(manifests) == 1
        assert manifests[0]["out_dir"] == str(good.out_dir)

    def test_non_numeric_elapsed_tolerated(
        self, tmp_path, counting_experiment
    ):
        import json as _json

        record = execute("counting", runs_dir=tmp_path)
        manifest = _json.loads((record.out_dir / MANIFEST_NAME).read_text())
        manifest["elapsed"] = "yesterday"
        (record.out_dir / MANIFEST_NAME).write_text(_json.dumps(manifest))
        loaded = load_record("counting", runs_dir=tmp_path)
        assert loaded is not None
        assert loaded.elapsed == 0.0


@pytest.fixture
def artifact_experiment():
    """An experiment whose result publishes an extra artifact file."""

    @experiment("artifact", spec=CountingSpec, title="Artifact experiment")
    def run_artifact(spec):
        result = ExperimentResult(
            experiment="artifact",
            rows=[{"knob": spec.knob}],
            table="table",
        )
        result.extra_artifacts = {
            "payload.bin": lambda path: path.write_bytes(b"\x01\x02")
        }
        result.manifest_extra = {"checkpoint": "payload.bin"}
        return result

    try:
        yield
    finally:
        registry_module.unregister("artifact")


class TestExtraArtifacts:
    """Results can publish extra files + manifest entries (checkpoints)."""

    def test_artifact_written_and_recorded(self, tmp_path, artifact_experiment):
        record = execute("artifact", runs_dir=tmp_path)
        assert (record.out_dir / "payload.bin").read_bytes() == b"\x01\x02"
        manifest = json.loads((record.out_dir / MANIFEST_NAME).read_text())
        assert manifest["checkpoint"] == "payload.bin"
        assert "payload.bin" in manifest["files"].values()

    def test_missing_artifact_invalidates_cache(
        self, tmp_path, artifact_experiment
    ):
        first = execute("artifact", runs_dir=tmp_path)
        assert execute("artifact", runs_dir=tmp_path).cache_hit
        (first.out_dir / "payload.bin").unlink()
        rerun = execute("artifact", runs_dir=tmp_path)
        assert not rerun.cache_hit
        assert (rerun.out_dir / "payload.bin").is_file()


class TestTrainBackboneRegistration:
    def test_registered_with_spec(self):
        from repro.experiments import train_backbone  # noqa: F401
        from repro.runtime.registry import get_experiment

        entry = get_experiment("train_backbone")
        spec = entry.spec_type()
        assert spec.eval_fraction == pytest.approx(0.1)
        assert spec.aggregator == "attention"
