"""Tests for run comparison: resolution, matching, rendering."""

import json
from pathlib import Path

import pytest

from repro.runtime import execute_parallel
from repro.runtime import registry as registry_module
from repro.runtime.compare import (
    RunResult,
    apply_tolerances,
    compare_results,
    load_run_result,
    load_tolerances,
    render_markdown,
    render_text,
    resolve_run_dir,
)

from ..helpers import GridSpec, register_grid_experiment


@pytest.fixture
def two_runs(tmp_path):
    """Two cached runs of the fake grid experiment with different factors."""
    name = register_grid_experiment("fake-grid")
    try:
        a = execute_parallel(name, GridSpec(factor=2), runs_dir=tmp_path)
        b = execute_parallel(name, GridSpec(factor=3), runs_dir=tmp_path)
        yield tmp_path, a, b
    finally:
        registry_module.unregister(name)


def fake_result(rows, experiment="fake"):
    return RunResult(
        out_dir=None, result={"experiment": experiment, "rows": rows}
    )


class TestResolveRunDir:
    def test_direct_path(self, two_runs):
        _, a, _ = two_runs
        assert resolve_run_dir(a.out_dir) == a.out_dir

    def test_name_slash_hash_under_runs_dir(self, two_runs):
        root, a, _ = two_runs
        ref = f"{a.experiment}/{a.out_dir.name}"
        assert resolve_run_dir(ref, runs_dir=root) == a.out_dir

    def test_unique_hash_prefix(self, two_runs):
        root, a, b = two_runs
        # find a prefix of a's dir name that b's doesn't share
        prefix = a.out_dir.name[:8]
        if b.out_dir.name.startswith(prefix):  # pragma: no cover - unlikely
            pytest.skip("hash prefixes collide")
        ref = f"{a.experiment}/{prefix}"
        assert resolve_run_dir(ref, runs_dir=root) == a.out_dir

    def test_ambiguous_prefix_rejected(self, tmp_path):
        (tmp_path / "exp" / "abc111").mkdir(parents=True)
        (tmp_path / "exp" / "abc222").mkdir()
        with pytest.raises(FileNotFoundError, match="ambiguous"):
            resolve_run_dir("exp/abc", runs_dir=tmp_path)

    def test_missing_run_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no run directory"):
            resolve_run_dir("nope/123", runs_dir=tmp_path)

    def test_explicit_runs_dir_beats_cwd_shadow(
        self, tmp_path, monkeypatch
    ):
        # a same-named directory in the CWD must not shadow --runs-dir
        root = tmp_path / "root"
        (root / "exp" / "abc123").mkdir(parents=True)
        cwd = tmp_path / "cwd"
        (cwd / "exp" / "abc123").mkdir(parents=True)
        monkeypatch.chdir(cwd)
        resolved = resolve_run_dir("exp/abc123", runs_dir=root)
        assert resolved == root / "exp" / "abc123"
        # ...but a CWD path still works when the root has no match
        (root / "exp" / "abc123").rmdir()
        resolved = resolve_run_dir("exp/abc123", runs_dir=root)
        assert resolved == Path("exp/abc123")


class TestLoadRunResult:
    def test_roundtrip(self, two_runs):
        _, a, _ = two_runs
        loaded = load_run_result(a.out_dir)
        assert loaded.experiment == a.experiment
        assert loaded.rows == a.result["rows"]

    def test_corrupt_result_rejected_cleanly(self, two_runs):
        _, a, _ = two_runs
        (a.out_dir / "result.json").write_text("{nope")
        with pytest.raises(ValueError, match="no readable result.json"):
            load_run_result(a.out_dir)

    def test_manifest_optional(self, two_runs):
        _, a, _ = two_runs
        (a.out_dir / "manifest.json").unlink()
        loaded = load_run_result(a.out_dir)
        assert loaded.experiment == a.experiment


class TestCompareResults:
    def test_metric_diff(self, two_runs):
        _, a, b = two_runs
        diff = compare_results(load_run_result(a.out_dir),
                               load_run_result(b.out_dir))
        assert diff["label_keys"] == ["row"]
        assert diff["metrics"] == ["value"]
        by_row = {d["row"]: d for d in diff["rows"]}
        assert by_row["alpha"]["a"] == 10
        assert by_row["alpha"]["b"] == 15
        assert by_row["alpha"]["delta"] == 5
        assert by_row["alpha"]["pct"] == pytest.approx(50.0)
        assert diff["only_in_a"] == diff["only_in_b"] == []

    def test_unmatched_rows_reported(self):
        a = fake_result([{"name": "x", "err": 1.0}, {"name": "y", "err": 2.0}])
        b = fake_result([{"name": "y", "err": 1.5}, {"name": "z", "err": 0.5}])
        diff = compare_results(a, b)
        assert [d["row"] for d in diff["rows"]] == ["y"]
        assert diff["only_in_a"] == ["x"]
        assert diff["only_in_b"] == ["z"]

    def test_zero_baseline_pct_is_none(self):
        a = fake_result([{"name": "x", "err": 0}])
        b = fake_result([{"name": "x", "err": 3}])
        diff = compare_results(a, b)
        assert diff["rows"][0]["pct"] is None

    def test_empty_rows(self):
        diff = compare_results(fake_result([]), fake_result([]))
        assert diff["rows"] == []

    def test_cross_experiment_rows_do_not_crash(self):
        # the CLI allows comparing different experiments (with a note);
        # disjoint row schemas must degrade to "nothing matched"
        a = fake_result(
            [{"suite": "EPFL", "subcircuits": 3}], experiment="table1"
        )
        b = fake_result([{"T": 1, "error": 0.5}], experiment="tsweep")
        diff = compare_results(a, b)
        assert diff["rows"] == []
        assert diff["only_in_a"] == ["EPFL"]

    def test_duplicate_labels_are_kept_distinct(self):
        # repeated label tuples must not silently drop rows
        a = fake_result([{"name": "x", "err": 1.0}, {"name": "x", "err": 2.0}])
        b = fake_result([{"name": "x", "err": 1.5}, {"name": "x", "err": 2.5}])
        diff = compare_results(a, b)
        assert [d["row"] for d in diff["rows"]] == ["x", "x #2"]
        assert [d["delta"] for d in diff["rows"]] == [0.5, 0.5]

    def test_bools_are_not_metrics(self):
        a = fake_result([{"name": "x", "flag": True, "err": 1.0}])
        b = fake_result([{"name": "x", "flag": False, "err": 2.0}])
        diff = compare_results(a, b)
        assert [d["metric"] for d in diff["rows"]] == ["err"]


class TestTolerances:
    """The --tolerances drift gate: pass, fail, missing-metric."""

    def _diff(self):
        a = fake_result(
            [{"name": "x", "err": 1.0}, {"name": "y", "err": 2.0}]
        )
        b = fake_result(
            [{"name": "x", "err": 1.05}, {"name": "y", "err": 2.5}]
        )
        return compare_results(a, b)

    def test_all_within_limits_passes(self):
        gated = apply_tolerances(self._diff(), {"err": 0.6})
        assert gated["violations"] == []
        assert all(d["within"] for d in gated["rows"])
        assert all(d["limit"] == 0.6 for d in gated["rows"])

    def test_drift_beyond_limit_is_a_violation(self):
        gated = apply_tolerances(self._diff(), {"err": 0.1})
        assert [v["kind"] for v in gated["violations"]] == ["drift"]
        assert gated["violations"][0]["row"] == "y"
        assert gated["violations"][0]["limit"] == 0.1
        by_row = {d["row"]: d for d in gated["rows"]}
        assert by_row["x"]["within"] and not by_row["y"]["within"]

    def test_row_qualified_limit_wins(self):
        gated = apply_tolerances(self._diff(), {"err": 0.1, "y:err": 1.0})
        assert gated["violations"] == []

    def test_missing_metric_is_a_violation(self):
        # a tolerance whose metric the diff cannot show must fail the
        # gate, not silently pass (renamed column, vanished row)
        gated = apply_tolerances(self._diff(), {"accuracy": 0.1})
        assert gated["violations"] == [
            {"kind": "missing", "key": "accuracy"}
        ]
        assert all("within" not in d for d in gated["rows"])

    def test_untoleranced_metrics_stay_unannotated(self):
        gated = apply_tolerances(self._diff(), {"y:err": 1.0})
        by_row = {d["row"]: d for d in gated["rows"]}
        assert "within" not in by_row["x"]
        assert by_row["y"]["within"]

    def test_original_diff_is_not_mutated(self):
        diff = self._diff()
        apply_tolerances(diff, {"err": 0.1})
        assert "violations" not in diff
        assert all("limit" not in d for d in diff["rows"])

    def test_load_tolerances(self, tmp_path):
        path = tmp_path / "limits.json"
        path.write_text('{"err": 0.5, "y:err": 1}')
        assert load_tolerances(path) == {"err": 0.5, "y:err": 1.0}

    @pytest.mark.parametrize(
        "content, message",
        [
            ("{nope", "unreadable"),
            ("[1]", "JSON object"),
            ('{"err": "big"}', "must be a number"),
            ('{"err": true}', "must be a number"),
            ('{"err": -1}', ">= 0"),
        ],
    )
    def test_bad_tolerance_files_rejected(self, tmp_path, content, message):
        path = tmp_path / "limits.json"
        path.write_text(content)
        with pytest.raises(ValueError, match=message):
            load_tolerances(path)

    def test_gated_text_render_has_status_column(self):
        gated = apply_tolerances(self._diff(), {"err": 0.1, "gone": 1.0})
        text = render_text(gated)
        assert "limit" in text and "status" in text
        assert "DRIFT" in text and "ok" in text
        assert "MISSING: tolerance 'gone'" in text

    def test_gated_markdown_render_has_status_column(self):
        gated = apply_tolerances(self._diff(), {"err": 0.1})
        md = render_markdown(gated)
        assert "| row | metric | a | b | delta | pct | limit | status |" in md
        assert "DRIFT" in md

    def test_ungated_render_unchanged(self):
        text = render_text(self._diff())
        assert "limit" not in text and "status" not in text


class TestRendering:
    def test_text_contains_rows(self, two_runs):
        _, a, b = two_runs
        diff = compare_results(load_run_result(a.out_dir),
                               load_run_result(b.out_dir))
        text = render_text(diff)
        assert "compare fake-grid" in text
        assert "alpha" in text and "delta" in text

    def test_markdown_pipe_table(self, two_runs):
        _, a, b = two_runs
        diff = compare_results(load_run_result(a.out_dir),
                               load_run_result(b.out_dir))
        md = render_markdown(diff)
        assert "| row | metric | a | b | delta | pct |" in md
        assert "| alpha |" in md

    def test_json_serialisable(self, two_runs):
        _, a, b = two_runs
        diff = compare_results(load_run_result(a.out_dir),
                               load_run_result(b.out_dir))
        assert json.loads(json.dumps(diff)) == diff

    def test_empty_diff_renders(self):
        diff = compare_results(fake_result([]), fake_result([]))
        assert "no comparable metric rows" in render_text(diff)
        assert "no comparable metric rows" in render_markdown(diff)
