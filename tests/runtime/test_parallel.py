"""Tests for the process-pool executor and per-unit cache directories."""

import json

import pytest

from repro.runtime import (
    execute,
    execute_parallel,
    load_unit_result,
    unit_dir_for,
    unit_hash,
)
from repro.runtime import registry as registry_module
from repro.runtime.parallel import UNITS_DIR_NAME
from repro.runtime.registry import UnitSpec
from repro.runtime.runner import MANIFEST_NAME

from ..helpers import (
    GridSpec,
    count_unit_executions,
    register_grid_experiment,
)


@pytest.fixture
def grid(tmp_path):
    """A registered fake grid experiment logging executions to disk."""
    log_dir = tmp_path / "log"
    log_dir.mkdir()
    name = register_grid_experiment("fake-grid", log_dir=log_dir)
    try:
        yield name, log_dir
    finally:
        registry_module.unregister(name)


def result_bytes(record):
    return (record.out_dir / "result.json").read_bytes()


class TestUnitHash:
    def test_stable_and_key_sensitive(self):
        a = unit_hash("deadbeef", UnitSpec(key="alpha"))
        assert a == unit_hash("deadbeef", UnitSpec(key="alpha"))
        assert a != unit_hash("deadbeef", UnitSpec(key="beta"))
        assert a != unit_hash("cafebabe", UnitSpec(key="alpha"))

    def test_title_and_params_do_not_rekey(self):
        # cosmetic fields must not invalidate a unit's cache
        plain = unit_hash("d", UnitSpec(key="alpha"))
        decorated = unit_hash(
            "d", UnitSpec(key="alpha", title="Row α", params=(("x", 1),))
        )
        assert plain == decorated


class TestExecuteParallel:
    def test_serial_and_parallel_byte_identical(self, tmp_path, grid):
        name, _ = grid
        a = execute_parallel(
            name, GridSpec(), runs_dir=tmp_path / "a", workers=1
        )
        b = execute_parallel(
            name, GridSpec(), runs_dir=tmp_path / "b", workers=3
        )
        assert result_bytes(a) == result_bytes(b)
        assert a.result["rows"] == [
            {"row": "alpha", "value": 10},
            {"row": "beta", "value": 8},
            {"row": "gamma", "value": 10},
        ]

    def test_matches_plain_serial_execute(self, tmp_path, grid):
        name, _ = grid
        serial = execute(name, GridSpec(), runs_dir=tmp_path / "serial")
        parallel = execute_parallel(
            name, GridSpec(), runs_dir=tmp_path / "par", workers=2
        )
        assert result_bytes(serial) == result_bytes(parallel)

    def test_unit_dirs_written(self, tmp_path, grid):
        name, _ = grid
        record = execute_parallel(
            name, GridSpec(), runs_dir=tmp_path, workers=2
        )
        units_dir = record.out_dir / UNITS_DIR_NAME
        assert len(list(units_dir.iterdir())) == 3
        digest = unit_hash(record.spec_hash, UnitSpec(key="alpha"))
        cached = load_unit_result(
            unit_dir_for(record.out_dir, digest), digest
        )
        assert cached == {"row": "alpha", "value": 10}

    def test_run_level_cache_hit_executes_nothing(self, tmp_path, grid):
        name, log_dir = grid
        execute_parallel(name, GridSpec(), runs_dir=tmp_path, workers=2)
        before = count_unit_executions(log_dir)
        record = execute_parallel(
            name, GridSpec(), runs_dir=tmp_path, workers=2
        )
        assert record.cache_hit
        assert count_unit_executions(log_dir) == before == 3

    def test_killed_run_resumes_from_completed_units(self, tmp_path, grid):
        """No top-level manifest + one missing unit == re-run that unit."""
        name, log_dir = grid
        first = execute_parallel(name, GridSpec(), runs_dir=tmp_path, workers=2)
        payload = result_bytes(first)
        # simulate a kill after two units completed: drop the certifying
        # manifest and one unit's directory
        (first.out_dir / MANIFEST_NAME).unlink()
        digest = unit_hash(first.spec_hash, UnitSpec(key="beta"))
        beta_dir = unit_dir_for(first.out_dir, digest)
        for f in beta_dir.iterdir():
            f.unlink()
        beta_dir.rmdir()

        resumed = execute_parallel(
            name, GridSpec(), runs_dir=tmp_path, workers=2
        )
        assert not resumed.cache_hit
        assert result_bytes(resumed) == payload
        assert count_unit_executions(log_dir, "beta") == 2
        assert count_unit_executions(log_dir, "alpha") == 1
        assert count_unit_executions(log_dir, "gamma") == 1

    def test_corrupt_unit_dir_re_runs_that_unit_alone(self, tmp_path, grid):
        name, log_dir = grid
        first = execute_parallel(name, GridSpec(), runs_dir=tmp_path, workers=1)
        (first.out_dir / MANIFEST_NAME).unlink()
        digest = unit_hash(first.spec_hash, UnitSpec(key="gamma"))
        gamma_dir = unit_dir_for(first.out_dir, digest)
        (gamma_dir / "result.json").write_text("{chopped")
        resumed = execute_parallel(name, GridSpec(), runs_dir=tmp_path)
        assert result_bytes(resumed) == result_bytes(first)
        assert count_unit_executions(log_dir, "gamma") == 2
        assert count_unit_executions(log_dir, "alpha") == 1

    def test_stale_unit_manifest_is_miss(self, tmp_path, grid):
        name, log_dir = grid
        first = execute_parallel(name, GridSpec(), runs_dir=tmp_path)
        (first.out_dir / MANIFEST_NAME).unlink()
        digest = unit_hash(first.spec_hash, UnitSpec(key="alpha"))
        alpha_dir = unit_dir_for(first.out_dir, digest)
        manifest = json.loads((alpha_dir / "unit.json").read_text())
        manifest["unit_hash"] = "0" * 64  # stale: from some other unit
        (alpha_dir / "unit.json").write_text(json.dumps(manifest))
        execute_parallel(name, GridSpec(), runs_dir=tmp_path)
        assert count_unit_executions(log_dir, "alpha") == 2

    def test_unrelated_files_in_units_dir_ignored(self, tmp_path, grid):
        name, _ = grid
        first = execute_parallel(name, GridSpec(), runs_dir=tmp_path)
        (first.out_dir / MANIFEST_NAME).unlink()
        stray = first.out_dir / UNITS_DIR_NAME / "0123456789abcdef"
        stray.mkdir()
        (stray / "junk.txt").write_text("stale layout leftovers")
        resumed = execute_parallel(name, GridSpec(), runs_dir=tmp_path)
        assert result_bytes(resumed) == result_bytes(first)

    def test_force_reruns_every_unit_and_drops_unit_caches(
        self, tmp_path, grid
    ):
        name, log_dir = grid
        first = execute_parallel(name, GridSpec(), runs_dir=tmp_path)
        stray = first.out_dir / UNITS_DIR_NAME / "feedfacefeedface"
        stray.mkdir(parents=True)
        record = execute_parallel(
            name, GridSpec(), runs_dir=tmp_path, workers=2, force=True
        )
        assert not record.cache_hit
        assert count_unit_executions(log_dir) == 6
        assert not stray.exists()

    def test_changed_spec_changes_run_dir(self, tmp_path, grid):
        name, _ = grid
        a = execute_parallel(name, GridSpec(), runs_dir=tmp_path)
        b = execute_parallel(name, GridSpec(factor=3), runs_dir=tmp_path)
        assert a.out_dir != b.out_dir
        assert a.result["rows"] != b.result["rows"]

    def test_failing_unit_propagates_but_keeps_siblings(
        self, tmp_path, grid
    ):
        name, log_dir = grid
        spec = GridSpec(rows=("alpha", "beta", "explode"))
        with pytest.raises(RuntimeError, match="unit exploded"):
            execute_parallel(name, spec, runs_dir=tmp_path, workers=2)
        # completed siblings kept their unit caches; the re-run after the
        # "fix" (here: a spec without the bad row... same spec minus the
        # failure is a new spec, so assert at the unit-cache level)
        executed = count_unit_executions(log_dir)
        assert executed == 2  # alpha and beta ran, explode never logged

    def test_progress_events(self, tmp_path, grid):
        name, _ = grid
        events = []
        record = execute_parallel(
            name, GridSpec(), runs_dir=tmp_path, workers=2,
            progress=events.append,
        )
        assert sorted(e["key"] for e in events) == ["alpha", "beta", "gamma"]
        assert all(e["status"] == "done" and e["total"] == 3 for e in events)
        # reported elapsed is the worker-measured execution time (what
        # unit.json records), not submit-to-completion queue time
        for event in events:
            digest = unit_hash(record.spec_hash, UnitSpec(key=event["key"]))
            manifest = json.loads(
                (unit_dir_for(record.out_dir, digest) / "unit.json").read_text()
            )
            assert event["elapsed"] == manifest["elapsed"]
        events.clear()
        record = execute_parallel(
            name, GridSpec(), runs_dir=tmp_path, force=False
        )
        assert record.cache_hit  # run-level hit emits no unit events
        assert events == []

    def test_cached_progress_events_on_resume(self, tmp_path, grid):
        name, _ = grid
        first = execute_parallel(name, GridSpec(), runs_dir=tmp_path)
        (first.out_dir / MANIFEST_NAME).unlink()
        events = []
        execute_parallel(
            name, GridSpec(), runs_dir=tmp_path, progress=events.append
        )
        assert {e["status"] for e in events} == {"cached"}
        assert len(events) == 3

    def test_non_unit_experiment_falls_back_to_serial(self, tmp_path):
        from dataclasses import dataclass

        from repro.runtime import (
            ExperimentResult,
            ExperimentSpec,
            experiment,
        )

        @dataclass(frozen=True)
        class PlainSpec(ExperimentSpec):
            pass

        @experiment("plain-exp", spec=PlainSpec, title="Plain")
        def run_plain(spec):
            return ExperimentResult(
                experiment="plain-exp", rows=[{"x": 1}], table="x=1"
            )

        try:
            record = execute_parallel(
                "plain-exp", runs_dir=tmp_path, workers=4
            )
            assert record.result["rows"] == [{"x": 1}]
            assert not (record.out_dir / UNITS_DIR_NAME).exists()
        finally:
            registry_module.unregister("plain-exp")


class TestRegistryUnitAPI:
    def test_units_without_run_unit_rejected(self):
        from repro.runtime import experiment

        with pytest.raises(TypeError, match="together"):
            experiment(
                "half-unit",
                spec=GridSpec,
                title="bad",
                units=lambda s: [],
            )

    def test_supports_units_flag(self, grid):
        from repro.runtime import get_experiment

        name, _ = grid
        exp = get_experiment(name)
        assert exp.supports_units
        assert [u.key for u in exp.units(GridSpec())] == [
            "alpha", "beta", "gamma",
        ]

    def test_all_six_builtins_support_units(self):
        from repro.runtime import get_experiment

        for name in ("table1", "table2", "table3", "table4",
                     "tsweep", "ablations"):
            exp = get_experiment(name)
            assert exp.supports_units, name
            units = exp.units(exp.spec_type())
            assert units, name
            assert len({u.key for u in units}) == len(units), name
