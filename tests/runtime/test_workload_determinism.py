"""Byte-determinism of the four promoted example workloads.

Golden fixtures are only trustworthy if the experiments behind them are
reproducible, so each new workload gets the same contract the table
ports have: the same spec run serially twice, and with ``--workers 2``,
must write byte-identical ``result.json``.  Specs are narrowed to one
epoch / tiny designs so every run finishes in seconds while still
exercising the full pipeline (backbone training, fine-tuning, fault
simulation, SAT checks) inside worker processes.
"""

import pytest

from repro.runtime import execute_parallel, get_experiment, spec_from_overrides

#: experiment -> CLI-style overrides keeping each run seconds-fast
CASES = {
    "testability_analysis": {
        "scale": "smoke",
        "epochs": "1",
        "designs": "mux_tree:3,ripple_adder:8",
    },
    "downstream_fault_prediction": {
        "scale": "smoke",
        "epochs": "1",
        "designs": "alu:4,ripple_adder:8",
    },
    "synth_robustness": {
        "scale": "smoke",
        "epochs": "1",
        "designs": "mux_tree:3,comparator:8",
    },
    "sat_oracle": {
        "scale": "smoke",
        "designs": "parity:8,mux_tree:2",
    },
}


def _spec(name):
    exp = get_experiment(name)
    return spec_from_overrides(exp.spec_type, CASES[name])


def _result_bytes(record):
    return (record.out_dir / "result.json").read_bytes()


@pytest.fixture(scope="module", params=sorted(CASES))
def serial_run(request, tmp_path_factory):
    """The --workers 1 reference run for one workload."""
    name = request.param
    runs = tmp_path_factory.mktemp(f"{name}-serial")
    record = execute_parallel(name, _spec(name), runs_dir=runs, workers=1)
    return name, record


class TestWorkloadDeterminism:
    def test_fresh_serial_rerun_is_byte_identical(self, serial_run, tmp_path):
        name, reference = serial_run
        again = execute_parallel(
            name, _spec(name), runs_dir=tmp_path, workers=1
        )
        assert not again.cache_hit
        assert _result_bytes(again) == _result_bytes(reference)

    def test_workers_2_matches_workers_1(self, serial_run, tmp_path):
        # worker processes each retrain their memoised backbone from the
        # spec seed; any hidden nondeterminism shows up as a byte diff
        name, reference = serial_run
        parallel = execute_parallel(
            name, _spec(name), runs_dir=tmp_path, workers=2
        )
        assert not parallel.cache_hit
        assert _result_bytes(parallel) == _result_bytes(reference)

    def test_rows_cover_every_design(self, serial_run):
        name, reference = serial_run
        designs = CASES[name]["designs"].split(",")
        assert [r["design"] for r in reference.result["rows"]] == designs
