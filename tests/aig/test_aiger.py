"""Tests for the ASCII AIGER reader/writer."""

import numpy as np
import pytest

from repro.aig import AIGBuilder, aiger, lit_negate

AND2 = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n"


def xor_aig():
    b = AIGBuilder(num_pis=2)
    a, bb = b.pi_lit(0), b.pi_lit(1)
    t0 = b.add_and(a, lit_negate(bb))
    t1 = b.add_and(lit_negate(a), bb)
    n = b.add_and(lit_negate(t0), lit_negate(t1))
    b.add_output(lit_negate(n))
    return b.build("xor")


class TestLoads:
    def test_parse_and2(self):
        aig = aiger.loads(AND2)
        assert aig.num_pis == 2
        assert aig.num_ands == 1
        assert aig.outputs == [6]

    def test_comment_section_ignored(self):
        aig = aiger.loads(AND2 + "c\nanything 1 2 3\n")
        assert aig.num_ands == 1

    def test_bad_header(self):
        with pytest.raises(aiger.AigerError, match="bad header"):
            aiger.loads("aig 3 2 0 1 1\n")

    def test_latches_rejected(self):
        with pytest.raises(aiger.AigerError, match="latches"):
            aiger.loads("aag 3 2 1 1 0\n2\n4\n6 2\n6\n")

    def test_truncated_body(self):
        with pytest.raises(aiger.AigerError, match="truncated"):
            aiger.loads("aag 3 2 0 1 1\n2\n4\n")

    def test_non_canonical_input_literal(self):
        with pytest.raises(aiger.AigerError, match="canonical"):
            aiger.loads("aag 3 2 0 1 1\n4\n2\n6\n6 2 4\n")

    def test_non_canonical_and_literal(self):
        with pytest.raises(aiger.AigerError, match="canonical"):
            aiger.loads("aag 4 2 0 1 1\n2\n4\n8\n8 2 4\n")

    def test_empty_input(self):
        with pytest.raises(aiger.AigerError, match="empty"):
            aiger.loads("")


class TestRoundTrip:
    def test_xor_roundtrip_structural(self):
        aig = xor_aig()
        aig2 = aiger.loads(aiger.dumps(aig))
        assert aig2.num_pis == aig.num_pis
        assert np.array_equal(aig2.ands, aig.ands)
        assert aig2.outputs == aig.outputs

    def test_file_io(self, tmp_path):
        path = tmp_path / "xor.aag"
        aiger.dump(xor_aig(), path)
        aig2 = aiger.load(path)
        assert aig2.num_ands == 3
