"""Unit tests for the gate-level netlist IR."""

import numpy as np
import pytest

from repro.aig import GateType, Netlist, NetlistError


def half_adder() -> Netlist:
    nl = Netlist("ha")
    nl.add_input("a")
    nl.add_input("b")
    nl.add_gate("sum", GateType.XOR, ["a", "b"])
    nl.add_gate("carry", GateType.AND, ["a", "b"])
    nl.set_outputs(["sum", "carry"])
    return nl


class TestConstruction:
    def test_inputs_tracked_in_order(self):
        nl = Netlist()
        nl.add_input("x")
        nl.add_input("y")
        assert nl.inputs == ["x", "y"]

    def test_duplicate_net_rejected(self):
        nl = Netlist()
        nl.add_input("x")
        with pytest.raises(NetlistError, match="already driven"):
            nl.add_gate("x", GateType.NOT, ["x"])

    def test_input_via_add_gate_rejected(self):
        nl = Netlist()
        with pytest.raises(NetlistError, match="add_input"):
            nl.add_gate("x", GateType.INPUT)

    def test_unary_arity_enforced(self):
        nl = Netlist()
        nl.add_input("a")
        nl.add_input("b")
        with pytest.raises(NetlistError, match="needs 1 fanins"):
            nl.add_gate("n", GateType.NOT, ["a", "b"])

    def test_mux_arity_enforced(self):
        nl = Netlist()
        nl.add_input("a")
        with pytest.raises(NetlistError, match="needs 3 fanins"):
            nl.add_gate("m", GateType.MUX, ["a", "a"])

    def test_binary_gates_need_two_fanins(self):
        nl = Netlist()
        nl.add_input("a")
        with pytest.raises(NetlistError, match=">=2"):
            nl.add_gate("g", GateType.AND, ["a"])

    def test_unknown_gate_type_rejected(self):
        nl = Netlist()
        nl.add_input("a")
        with pytest.raises(NetlistError, match="unknown gate type"):
            nl.add_gate("g", "FROB", ["a", "a"])

    def test_variadic_gates_accept_many_fanins(self):
        nl = Netlist()
        nets = [nl.add_input(f"i{k}") for k in range(5)]
        nl.add_gate("g", GateType.OR, nets)
        assert len(nl.gate("g").fanins) == 5


class TestValidation:
    def test_valid_netlist_passes(self):
        half_adder().validate()

    def test_undriven_fanin_detected(self):
        nl = Netlist()
        nl.add_input("a")
        nl.add_gate("g", GateType.AND, ["a", "ghost"])
        with pytest.raises(NetlistError, match="undriven"):
            nl.validate()

    def test_undriven_output_detected(self):
        nl = Netlist()
        nl.add_input("a")
        nl.set_outputs(["ghost"])
        with pytest.raises(NetlistError, match="not driven"):
            nl.validate()

    def test_cycle_detected(self):
        nl = Netlist()
        nl.add_input("a")
        nl.add_gate("g1", GateType.AND, ["a", "g2"])
        nl.add_gate("g2", GateType.AND, ["a", "g1"])
        nl.set_outputs(["g2"])
        with pytest.raises(NetlistError, match="cycle"):
            nl.validate()

    def test_missing_net_lookup(self):
        with pytest.raises(NetlistError, match="no gate drives"):
            Netlist().gate("nope")


class TestStructure:
    def test_topological_order_respects_dependencies(self):
        nl = half_adder()
        order = nl.topological_order()
        assert order.index("a") < order.index("sum")
        assert order.index("b") < order.index("carry")

    def test_levels(self):
        nl = Netlist()
        nl.add_input("a")
        nl.add_gate("n1", GateType.NOT, ["a"])
        nl.add_gate("n2", GateType.NOT, ["n1"])
        nl.set_outputs(["n2"])
        assert nl.levels() == {"a": 0, "n1": 1, "n2": 2}
        assert nl.depth() == 2

    def test_num_gates_excludes_inputs(self):
        nl = half_adder()
        assert nl.num_gates() == 2
        assert nl.num_gates(exclude_inputs=False) == 4

    def test_gate_type_counts(self):
        counts = half_adder().gate_type_counts()
        assert counts[GateType.INPUT] == 2
        assert counts[GateType.XOR] == 1
        assert counts[GateType.AND] == 1

    def test_copy_is_independent(self):
        nl = half_adder()
        cp = nl.copy()
        cp.add_gate("extra", GateType.NOT, ["sum"])
        assert "extra" in cp
        assert "extra" not in nl
        assert cp.outputs == nl.outputs


class TestEvaluate:
    def test_boolean_evaluation_half_adder(self):
        nl = half_adder()
        a = np.array([0, 0, 1, 1], dtype=bool)
        b = np.array([0, 1, 0, 1], dtype=bool)
        vals = nl.evaluate({"a": a, "b": b})
        assert vals["sum"].tolist() == [False, True, True, False]
        assert vals["carry"].tolist() == [False, False, False, True]

    def test_packed_evaluation_matches_boolean(self):
        nl = half_adder()
        a = np.array([0b0011], dtype=np.uint64)
        b = np.array([0b0101], dtype=np.uint64)
        vals = nl.evaluate({"a": a, "b": b})
        assert int(vals["sum"][0]) & 0xF == 0b0110
        assert int(vals["carry"][0]) & 0xF == 0b0001

    def test_every_gate_type_semantics(self):
        nl = Netlist()
        nl.add_input("a")
        nl.add_input("b")
        nl.add_input("s")
        cases = {
            "t_and": (GateType.AND, ["a", "b"]),
            "t_nand": (GateType.NAND, ["a", "b"]),
            "t_or": (GateType.OR, ["a", "b"]),
            "t_nor": (GateType.NOR, ["a", "b"]),
            "t_xor": (GateType.XOR, ["a", "b"]),
            "t_xnor": (GateType.XNOR, ["a", "b"]),
            "t_not": (GateType.NOT, ["a"]),
            "t_buf": (GateType.BUF, ["a"]),
            "t_mux": (GateType.MUX, ["s", "a", "b"]),
            "t_c0": (GateType.CONST0, []),
            "t_c1": (GateType.CONST1, []),
        }
        for name, (t, fi) in cases.items():
            nl.add_gate(name, t, fi)
        nl.set_outputs(list(cases))
        a = np.array([0, 0, 1, 1, 0, 0, 1, 1], dtype=bool)
        b = np.array([0, 1, 0, 1, 0, 1, 0, 1], dtype=bool)
        s = np.array([0, 0, 0, 0, 1, 1, 1, 1], dtype=bool)
        v = nl.evaluate({"a": a, "b": b, "s": s})
        np.testing.assert_array_equal(v["t_and"], a & b)
        np.testing.assert_array_equal(v["t_nand"], ~(a & b))
        np.testing.assert_array_equal(v["t_or"], a | b)
        np.testing.assert_array_equal(v["t_nor"], ~(a | b))
        np.testing.assert_array_equal(v["t_xor"], a ^ b)
        np.testing.assert_array_equal(v["t_xnor"], ~(a ^ b))
        np.testing.assert_array_equal(v["t_not"], ~a)
        np.testing.assert_array_equal(v["t_buf"], a)
        np.testing.assert_array_equal(v["t_mux"], np.where(s, b, a))
        assert not v["t_c0"].any()
        assert v["t_c1"].all()

    def test_missing_input_value_rejected(self):
        nl = half_adder()
        with pytest.raises(NetlistError, match="missing value"):
            nl.evaluate({"a": np.zeros(1, dtype=bool)})

    def test_mismatched_shapes_rejected(self):
        nl = half_adder()
        with pytest.raises(NetlistError, match="share one shape"):
            nl.evaluate(
                {"a": np.zeros(1, dtype=bool), "b": np.zeros(2, dtype=bool)}
            )
