"""Streaming file parsers: ``load(path)`` must behave exactly like
``loads(read_text())`` — same circuits, same error messages, same
1-based line numbers — while consuming the file line by line instead of
slurping it whole.
"""

import pytest

from repro.aig import aiger, bench
from repro.aig.netlist import NetlistError
from repro.datagen.generators import parity, ripple_adder
from repro.synth import synthesize

AIGER_BAD = [
    "",  # empty
    "aag 3 2 1 1 0\n2\n4\n6 2\n6\n",  # latches
    "aag 3 2 0 1 1\n2\n4\n",  # truncated body
    "aag 3 2 0 1 1\n2\n5\n6\n6 2 4\n",  # non-canonical input literal
    "aag 5 2 0 1 1\n2\n4\nnope\n6 2 4\n",  # non-integer output
    "aig 3 2 0 1 1\n",  # binary header
]

BENCH_BAD = [
    "INPUT(a)\nOUTPUT(s)\ns = FOO(a)\n",  # unknown operator
    "INPUT(a)\nwhat even is this\n",  # unparseable line
    "INPUT(a)\nOUTPUT(s)\ns = AND(a)\n",  # arity fault
]


def write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestAigerParity:
    def test_roundtrip_through_file(self, tmp_path):
        aig = synthesize(ripple_adder(4))
        path = write(tmp_path, "a.aag", aiger.dumps(aig))
        got = aiger.load(path)
        assert got.num_pis == aig.num_pis
        assert (got.ands == aig.ands).all()
        assert got.outputs == aig.outputs

    def test_comment_section_ignored(self, tmp_path):
        aig = synthesize(parity(4))
        text = aiger.dumps(aig) + "more trailing commentary\n"
        path = write(tmp_path, "c.aag", text)
        got = aiger.load(path)
        assert (got.ands == aig.ands).all()

    @pytest.mark.parametrize("text", AIGER_BAD)
    def test_errors_match_loads(self, tmp_path, text):
        path = write(tmp_path, "bad.aag", text)
        with pytest.raises(aiger.AigerError) as from_text:
            aiger.loads(text)
        with pytest.raises(aiger.AigerError) as from_file:
            aiger.load(path)
        assert str(from_file.value) == str(from_text.value)
        assert from_file.value.line == from_text.value.line

    def test_extra_body_lines_ignored(self):
        # lines beyond I+O+A are ignored, streamed or not
        text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n999 1 1\n"
        aig = aiger.loads(text)
        assert aig.num_ands == 1


class TestBenchParity:
    def test_roundtrip_through_file(self, tmp_path):
        netlist = ripple_adder(4)
        path = write(tmp_path, "a.bench", bench.dumps(netlist))
        got = bench.load(path)
        assert got.inputs == netlist.inputs
        assert got.outputs == netlist.outputs

    @pytest.mark.parametrize("text", BENCH_BAD)
    def test_errors_match_loads(self, tmp_path, text):
        path = write(tmp_path, "bad.bench", text)
        with pytest.raises(NetlistError) as from_text:
            bench.loads(text)
        with pytest.raises(NetlistError) as from_file:
            bench.load(path)
        assert str(from_file.value) == str(from_text.value)
        assert from_file.value.line == from_text.value.line

    def test_trailing_comments_and_blanks(self, tmp_path):
        text = (
            "# header comment\n\nINPUT(a)\nINPUT(b)\n"
            "OUTPUT(s)\ns = AND(a, b)  # inline comment\n\n"
        )
        path = write(tmp_path, "c.bench", text)
        got = bench.load(path)
        assert got.inputs == ["a", "b"]
        assert got.outputs == ["s"]
