"""Parse errors carry a common base type and 1-based line numbers.

``repro serve`` maps :class:`CircuitParseError` to a structured 400
reply whose ``line`` field comes straight from the exception, so every
front-end parser must raise through the shared base with the location
attached whenever it is known.
"""

import pytest

from repro.aig import CircuitParseError, NetlistError, aiger, bench, verilog


class TestCommonBase:
    def test_aiger_error_is_circuit_parse_error(self):
        with pytest.raises(CircuitParseError):
            aiger.loads("aag nonsense\n")

    def test_bench_error_is_circuit_parse_error(self):
        with pytest.raises(CircuitParseError):
            bench.loads("INPUT(a)\nb = FROB(a)\n")

    def test_verilog_error_is_circuit_parse_error(self):
        with pytest.raises(CircuitParseError):
            verilog.loads("module m; endmodule extra")

    def test_netlist_error_is_circuit_parse_error(self):
        assert issubclass(NetlistError, CircuitParseError)


class TestLineNumbers:
    def test_aiger_bad_header_line(self):
        with pytest.raises(aiger.AigerError) as info:
            aiger.loads("aag 2 1 0 1\nrest\n")
        assert info.value.line == 1
        assert "line 1" in str(info.value)

    def test_aiger_bad_body_line(self):
        with pytest.raises(aiger.AigerError) as info:
            aiger.loads("aag 1 1 0 1 0\n2\nnonsense\n")
        assert info.value.line == 3

    def test_bench_bad_operator_line(self):
        with pytest.raises(NetlistError) as info:
            bench.loads("INPUT(a)\nb = FROB(a)\nOUTPUT(b)\n")
        assert info.value.line == 2

    def test_bench_unparseable_line(self):
        with pytest.raises(NetlistError) as info:
            bench.loads("INPUT(a)\n???\n")
        assert info.value.line == 2

    def test_bench_validation_faults_have_no_line(self):
        # undriven nets are netlist-level faults found only at final
        # validation; there is no single offending source line
        with pytest.raises(NetlistError) as info:
            bench.loads("OUTPUT(ghost)\n")
        assert info.value.line is None

    def test_verilog_bad_assign_line(self):
        text = "module m(input a, output y);\nassign y = a ?? a;\nendmodule\n"
        with pytest.raises(verilog.VerilogError) as info:
            verilog.loads(text)
        assert info.value.line == 2

    def test_empty_input_has_no_line(self):
        with pytest.raises(aiger.AigerError) as info:
            aiger.loads("")
        assert info.value.line is None
