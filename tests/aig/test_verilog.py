"""Tests for the structural Verilog reader/writer."""

import pytest

from repro.aig import GateType, verilog
from repro.datagen.generators import alu, comparator, ripple_adder
from repro.datagen.normalize import normalize_to_library
from repro.sat import check_equivalence
from repro.synth import netlist_to_aig

HALF_ADDER = """
// half adder
module half_adder (a, b, s, c);
  input a, b;
  output s, c;
  xor x1 (s, a, b);
  and a1 (c, a, b);
endmodule
"""


class TestLoads:
    def test_parse_half_adder(self):
        nl = verilog.loads(HALF_ADDER)
        assert nl.name == "half_adder"
        assert nl.inputs == ["a", "b"]
        assert nl.outputs == ["s", "c"]
        assert nl.gate("s").gate_type == GateType.XOR

    def test_comments_stripped(self):
        text = HALF_ADDER.replace(
            "xor x1 (s, a, b);", "xor x1 (s, a, b); /* inline\nblock */"
        )
        assert verilog.loads(text).gate("s").gate_type == GateType.XOR

    def test_unnamed_instances(self):
        text = (
            "module m (a, y);\n  input a;\n  output y;\n"
            "  not (y, a);\nendmodule\n"
        )
        nl = verilog.loads(text)
        assert nl.gate("y").gate_type == GateType.NOT

    def test_assign_forms(self):
        text = (
            "module m (a, y0, y1, y2, y3);\n  input a;\n"
            "  output y0, y1, y2, y3;\n"
            "  assign y0 = a;\n  assign y1 = ~a;\n"
            "  assign y2 = 1'b0;\n  assign y3 = 1'b1;\nendmodule\n"
        )
        nl = verilog.loads(text)
        assert nl.gate("y0").gate_type == GateType.BUF
        assert nl.gate("y1").gate_type == GateType.NOT
        assert nl.gate("y2").gate_type == GateType.CONST0
        assert nl.gate("y3").gate_type == GateType.CONST1

    def test_behavioural_rejected(self):
        text = "module m (a); input a; always @(a) begin end endmodule"
        with pytest.raises(verilog.VerilogError, match="behavioural"):
            verilog.loads(text)

    def test_vector_nets_rejected(self):
        text = "module m (a); input [3:0] a; endmodule"
        with pytest.raises(verilog.VerilogError, match="bit-blasted"):
            verilog.loads(text)

    def test_missing_module_rejected(self):
        with pytest.raises(verilog.VerilogError, match="module"):
            verilog.loads("wire x;")

    def test_complex_assign_rejected(self):
        text = (
            "module m (a, b, y);\n  input a, b;\n  output y;\n"
            "  assign y = a & b;\nendmodule\n"
        )
        with pytest.raises(verilog.VerilogError, match="assign"):
            verilog.loads(text)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory", [lambda: ripple_adder(4), lambda: comparator(3)]
    )
    def test_functionally_preserved(self, factory):
        original = factory()
        text = verilog.dumps(original)
        parsed = verilog.loads(text)
        assert check_equivalence(
            netlist_to_aig(original), netlist_to_aig(parsed)
        ).equivalent

    def test_mux_requires_normalisation(self):
        nl = alu(2)  # contains MUX gates
        with pytest.raises(verilog.VerilogError, match="MUX"):
            verilog.dumps(nl)
        text = verilog.dumps(normalize_to_library(nl))
        parsed = verilog.loads(text)
        assert check_equivalence(
            netlist_to_aig(normalize_to_library(nl)), netlist_to_aig(parsed)
        ).equivalent

    def test_file_io(self, tmp_path):
        nl = verilog.loads(HALF_ADDER)
        path = tmp_path / "ha.v"
        verilog.dump(nl, path)
        nl2 = verilog.load(path)
        assert nl2.inputs == nl.inputs
        assert nl2.outputs == nl.outputs
