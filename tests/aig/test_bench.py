"""Tests for the .bench reader/writer."""

import numpy as np
import pytest

from repro.aig import GateType, NetlistError, bench
from repro.sim import exhaustive_patterns, output_values, simulate_aig
from repro.synth import netlist_to_aig

HALF_ADDER = """
# a tiny half adder
INPUT(a)
INPUT(b)
OUTPUT(sum)
OUTPUT(carry)
sum = XOR(a, b)
carry = AND(a, b)
"""


class TestLoads:
    def test_parse_half_adder(self):
        nl = bench.loads(HALF_ADDER)
        assert nl.inputs == ["a", "b"]
        assert nl.outputs == ["sum", "carry"]
        assert nl.gate("sum").gate_type == GateType.XOR

    def test_comments_and_blank_lines_ignored(self):
        nl = bench.loads("# only comments\n\nINPUT(x)\nOUTPUT(x)\n")
        assert nl.inputs == ["x"]

    def test_operator_aliases(self):
        nl = bench.loads(
            "INPUT(a)\nOUTPUT(n)\nOUTPUT(f)\nn = INV(a)\nf = BUFF(a)\n"
        )
        assert nl.gate("n").gate_type == GateType.NOT
        assert nl.gate("f").gate_type == GateType.BUF

    def test_constants(self):
        nl = bench.loads("OUTPUT(z)\nOUTPUT(o)\nz = GND()\no = VDD()\n")
        assert nl.gate("z").gate_type == GateType.CONST0
        assert nl.gate("o").gate_type == GateType.CONST1

    def test_unknown_operator_rejected(self):
        with pytest.raises(NetlistError, match="unknown operator"):
            bench.loads("INPUT(a)\nOUTPUT(g)\ng = WIBBLE(a)\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(NetlistError, match="cannot parse"):
            bench.loads("INPUT(a)\nthis is not bench\n")

    def test_case_insensitive_operators(self):
        nl = bench.loads("INPUT(a)\nINPUT(b)\nOUTPUT(g)\ng = and(a, b)\n")
        assert nl.gate("g").gate_type == GateType.AND


class TestRoundTrip:
    def test_dump_then_load_preserves_function(self):
        nl = bench.loads(HALF_ADDER)
        nl2 = bench.loads(bench.dumps(nl))
        assert nl2.inputs == nl.inputs
        assert nl2.outputs == nl.outputs
        a1, a2 = netlist_to_aig(nl), netlist_to_aig(nl2)
        pats = exhaustive_patterns(2)
        o1 = output_values(a1, simulate_aig(a1, pats))
        o2 = output_values(a2, simulate_aig(a2, pats))
        mask = np.uint64(0xF)
        assert np.array_equal(o1 & mask, o2 & mask)

    def test_file_io(self, tmp_path):
        nl = bench.loads(HALF_ADDER)
        path = tmp_path / "ha.bench"
        bench.dump(nl, path)
        nl2 = bench.load(path)
        assert nl2.inputs == nl.inputs
        assert len(nl2.gates) == len(nl.gates)
