"""Unit tests for AIG and GateGraph data structures."""

import numpy as np
import pytest

from repro.aig import (
    AIG,
    AIGBuilder,
    AND,
    GateGraph,
    NOT,
    PI,
    lit_is_negated,
    lit_make,
    lit_negate,
    lit_var,
)


class TestLiteralHelpers:
    def test_make_and_split(self):
        lit = lit_make(7, negated=True)
        assert lit == 15
        assert lit_var(lit) == 7
        assert lit_is_negated(lit)

    def test_negate_is_involution(self):
        for lit in range(20):
            assert lit_negate(lit_negate(lit)) == lit
            assert lit_negate(lit) != lit


class TestAIGBuilder:
    def test_simple_and(self):
        b = AIGBuilder(num_pis=2)
        g = b.add_and(b.pi_lit(0), b.pi_lit(1))
        b.add_output(g)
        aig = b.build("and2")
        assert aig.num_pis == 2
        assert aig.num_ands == 1
        assert aig.outputs == [g]
        assert aig.depth() == 1

    def test_pi_index_bounds(self):
        b = AIGBuilder(num_pis=2)
        with pytest.raises(IndexError):
            b.pi_lit(2)

    def test_forward_reference_rejected(self):
        b = AIGBuilder(num_pis=1)
        with pytest.raises(ValueError, match="not yet defined"):
            b.add_and(b.pi_lit(0), lit_make(99))


class TestAIG:
    def build_chain(self, n: int = 4) -> AIG:
        """AND chain: g1 = i0 & i1, g2 = g1 & i1, ..."""
        b = AIGBuilder(num_pis=2)
        lit = b.add_and(b.pi_lit(0), b.pi_lit(1))
        for _ in range(n - 1):
            lit = b.add_and(lit, b.pi_lit(1))
        b.add_output(lit)
        return b.build()

    def test_topological_validation(self):
        bad = np.array([[8, 2]])  # references var 4 but first AND is var 3
        with pytest.raises(ValueError, match="topologically ordered"):
            AIG(2, bad, [6])

    def test_output_range_validation(self):
        with pytest.raises(ValueError, match="out of range"):
            AIG(1, np.zeros((0, 2)), [99])

    def test_levels_and_depth(self):
        aig = self.build_chain(4)
        lv = aig.levels()
        assert lv[0] == 0  # const
        assert (lv[1:3] == 0).all()  # PIs
        assert lv[-1] == 4
        assert aig.depth() == 4

    def test_fanout_counts(self):
        aig = self.build_chain(3)
        counts = aig.fanout_counts()
        assert counts[2] == 3  # i1 feeds every AND
        assert counts[-1] == 1  # last AND feeds the output

    def test_uses_constant(self):
        b = AIGBuilder(num_pis=1)
        b.add_output(0)  # constant false output
        assert b.build().uses_constant()
        assert not self.build_chain().uses_constant()

    def test_stats_and_copy(self):
        aig = self.build_chain(4)
        st = aig.stats()
        assert st == {"pis": 2, "ands": 4, "outputs": 1, "depth": 4}
        cp = aig.copy("chain_copy")
        assert cp.name == "chain_copy"
        assert np.array_equal(cp.ands, aig.ands)
        cp.ands[0, 0] = 99  # mutation must not leak back
        assert aig.ands[0, 0] != 99


class TestGateGraph:
    def diamond_aig(self) -> AIG:
        """out = (a & b) & !(a & b) style sharing: one AND reused twice."""
        b = AIGBuilder(num_pis=2)
        shared = b.add_and(b.pi_lit(0), b.pi_lit(1))
        left = b.add_and(shared, b.pi_lit(0))
        right = b.add_and(lit_negate(shared), b.pi_lit(1))
        out = b.add_and(left, lit_negate(right))
        b.add_output(out)
        return b.build("diamond")

    def test_expansion_types_and_arity(self):
        g = self.diamond_aig().to_gate_graph()
        g.validate()
        counts = g.type_counts()
        assert counts["PI"] == 2
        assert counts["AND"] == 4
        # two complemented literal uses -> two NOT nodes
        assert counts["NOT"] == 2

    def test_not_nodes_shared_per_literal(self):
        b = AIGBuilder(num_pis=2)
        x = b.add_and(b.pi_lit(0), b.pi_lit(1))
        y = b.add_and(lit_negate(x), b.pi_lit(0))
        z = b.add_and(lit_negate(x), b.pi_lit(1))
        b.add_output(b.add_and(y, z))
        g = b.build().to_gate_graph()
        # !x is used twice but only one NOT node must exist
        assert g.type_counts()["NOT"] == 1

    def test_output_on_complemented_literal_is_not_node(self):
        b = AIGBuilder(num_pis=2)
        x = b.add_and(b.pi_lit(0), b.pi_lit(1))
        b.add_output(lit_negate(x))
        g = b.build().to_gate_graph()
        assert g.node_type[g.outputs[0]] == NOT

    def test_constant_rejected(self):
        b = AIGBuilder(num_pis=1)
        b.add_output(1)  # constant true
        with pytest.raises(ValueError, match="constants"):
            b.build().to_gate_graph()

    def test_levels_count_not_nodes(self):
        b = AIGBuilder(num_pis=1)
        # single NOT output: PI(0) -> NOT(1)
        b.add_output(lit_negate(b.pi_lit(0)))
        g = b.build().to_gate_graph()
        assert g.depth() == 1
        assert g.node_type[0] == PI
        assert g.node_type[1] == NOT

    def test_source_lit_provenance(self):
        aig = self.diamond_aig()
        g = aig.to_gate_graph()
        for v in range(g.num_nodes):
            lit = int(g.source_lit[v])
            if g.node_type[v] == NOT:
                assert lit_is_negated(lit)
            else:
                assert not lit_is_negated(lit)

    def test_edges_topologically_ordered(self):
        g = self.diamond_aig().to_gate_graph()
        assert (g.edges[:, 0] < g.edges[:, 1]).all()

    def test_fanin_fanout_consistency(self):
        g = self.diamond_aig().to_gate_graph()
        fanins = g.fanin_lists()
        fanouts = g.fanout_lists()
        recovered = sorted(
            (u, v) for v, fl in enumerate(fanins) for u in fl
        )
        assert recovered == sorted(map(tuple, g.edges.tolist()))
        assert sum(len(f) for f in fanouts) == g.num_edges

    def test_validate_catches_bad_arity(self):
        g = GateGraph(
            node_type=np.array([PI, AND], dtype=np.int8),
            edges=np.array([[0, 1]], dtype=np.int64),
            outputs=np.array([1]),
        )
        with pytest.raises(ValueError, match="expected 2"):
            g.validate()
