"""Tests for circuit featurisation (CircuitGraph, from_aig, from_netlist)."""

import numpy as np
import pytest

from repro.aig import GateType, Netlist
from repro.graphdata import (
    AIG_TYPE_NAMES,
    NETLIST_TYPE_NAMES,
    from_aig,
    from_netlist,
)
from repro.sim import exact_probabilities, node_probabilities_from_var_probs
from repro.synth import synthesize

from ..helpers import random_netlist


def small_aig():
    nl = Netlist("fa")
    for x in "abc":
        nl.add_input(x)
    nl.add_gate("s1", GateType.XOR, ["a", "b"])
    nl.add_gate("sum", GateType.XOR, ["s1", "c"])
    nl.add_gate("c1", GateType.AND, ["a", "b"])
    nl.add_gate("c2", GateType.AND, ["s1", "c"])
    nl.add_gate("cout", GateType.OR, ["c1", "c2"])
    nl.set_outputs(["sum", "cout"])
    return synthesize(nl)


class TestFromAig:
    def test_basic_shape_and_vocab(self):
        g = from_aig(small_aig(), num_patterns=2048, seed=0)
        g.validate()
        assert g.type_names == AIG_TYPE_NAMES
        assert g.num_types == 3
        assert g.num_nodes == g.labels.shape[0]

    def test_one_hot(self):
        g = from_aig(small_aig(), num_patterns=512, seed=0)
        oh = g.one_hot()
        assert oh.shape == (g.num_nodes, 3)
        np.testing.assert_allclose(oh.sum(axis=1), 1.0)
        np.testing.assert_array_equal(np.argmax(oh, axis=1), g.node_type)

    def test_labels_match_exact(self):
        aig = small_aig()
        g = from_aig(aig, exact_below_pis=10)
        expect = node_probabilities_from_var_probs(
            aig.to_gate_graph(), exact_probabilities(aig)
        )
        np.testing.assert_allclose(g.labels, expect, atol=1e-7)

    def test_skip_edges_present_on_reconvergent_circuit(self):
        g = from_aig(small_aig(), num_patterns=512, seed=0)
        assert len(g.skip_edges) > 0
        assert (g.skip_level_diff >= 2).all()

    def test_skip_edges_disabled(self):
        g = from_aig(small_aig(), num_patterns=512, with_skip_edges=False)
        assert len(g.skip_edges) == 0

    def test_seed_reproducibility(self):
        a = from_aig(small_aig(), num_patterns=1024, seed=3)
        b = from_aig(small_aig(), num_patterns=1024, seed=3)
        np.testing.assert_array_equal(a.labels, b.labels)


class TestFromNetlist:
    def original_netlist(self):
        nl = Netlist("orig")
        nl.add_input("a")
        nl.add_input("b")
        nl.add_input("c")
        nl.add_gate("g1", GateType.NAND, ["a", "b"])
        nl.add_gate("g2", GateType.XOR, ["g1", "c"])
        nl.add_gate("g3", GateType.NOR, ["g1", "g2"])
        nl.add_gate("g4", GateType.NOT, ["g3"])
        nl.set_outputs(["g2", "g4"])
        return nl

    def test_vocabulary_and_types(self):
        g = from_netlist(self.original_netlist(), num_patterns=1024, seed=0)
        g.validate()
        assert g.type_names == NETLIST_TYPE_NAMES
        assert g.num_types == 7
        used = {g.type_names[t] for t in g.node_type}
        assert {"INPUT", "NAND", "XOR", "NOR", "NOT"} <= used

    def test_fold_aliases(self):
        nl = Netlist("fold")
        nl.add_input("a")
        nl.add_input("b")
        nl.add_gate("x", GateType.XNOR, ["a", "b"])  # folds into XOR slot
        nl.add_gate("f", GateType.BUF, ["x"])  # folds into NOT slot
        nl.set_outputs(["f"])
        g = from_netlist(nl, num_patterns=512)
        names = [g.type_names[t] for t in g.node_type]
        assert names.count("XOR") == 1
        assert names.count("NOT") == 1

    def test_labels_match_exact_enumeration(self):
        nl = self.original_netlist()
        g = from_netlist(nl, num_patterns=200_000, seed=1)
        # brute-force probabilities from the netlist truth table
        order = nl.topological_order()
        total = 8
        import itertools

        counts = {name: 0 for name in order}
        for bits in itertools.product([False, True], repeat=3):
            vals = nl.evaluate(
                {n: np.array([v]) for n, v in zip(nl.inputs, bits)}
            )
            for name in order:
                counts[name] += int(vals[name][0])
        expect = np.array([counts[n] / total for n in order])
        np.testing.assert_allclose(g.labels, expect, atol=0.02)

    def test_mux_rejected(self):
        nl = Netlist("withmux")
        for x in "sab":
            nl.add_input(x)
        nl.add_gate("m", GateType.MUX, ["s", "a", "b"])
        nl.set_outputs(["m"])
        with pytest.raises(ValueError, match="not supported"):
            from_netlist(nl, num_patterns=64)

    def test_no_skip_edges(self):
        g = from_netlist(self.original_netlist(), num_patterns=256)
        assert len(g.skip_edges) == 0


class TestValidate:
    def test_catches_bad_labels(self):
        g = from_aig(small_aig(), num_patterns=256, seed=0)
        g.labels = g.labels + 5.0
        with pytest.raises(AssertionError):
            g.validate()

    def test_random_circuits_validate(self):
        rng = np.random.default_rng(8)
        for _ in range(5):
            aig = synthesize(random_netlist(rng, num_inputs=5, num_gates=25))
            from repro.synth import has_constant_outputs

            if has_constant_outputs(aig) or aig.num_ands == 0:
                continue
            from_aig(aig, num_patterns=256, seed=0).validate()
