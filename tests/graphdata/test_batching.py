"""Tests for graph merging and topological level schedules."""

import numpy as np
import pytest

from repro.datagen.generators import parity, ripple_adder
from repro.graphdata import (
    LevelSchedule,
    from_aig,
    merge,
    positional_encoding,
    prepare,
)
from repro.synth import synthesize


def graph_of(netlist, seed=0):
    return from_aig(synthesize(netlist), num_patterns=512, seed=seed)


class TestMerge:
    def test_offsets_and_counts(self):
        g1 = graph_of(ripple_adder(3))
        g2 = graph_of(parity(5))
        m = merge([g1, g2])
        assert m.num_nodes == g1.num_nodes + g2.num_nodes
        assert m.num_edges == g1.num_edges + g2.num_edges
        # second graph's edges shifted beyond the first graph's nodes
        assert (m.edges[g1.num_edges :] >= g1.num_nodes).all()
        m.validate()

    def test_labels_concatenated(self):
        g1 = graph_of(ripple_adder(3))
        g2 = graph_of(parity(5))
        m = merge([g1, g2])
        np.testing.assert_array_equal(m.labels[: g1.num_nodes], g1.labels)
        np.testing.assert_array_equal(m.labels[g1.num_nodes :], g2.labels)

    def test_skip_edges_offset(self):
        g1 = graph_of(ripple_adder(4))
        g2 = graph_of(ripple_adder(4))
        m = merge([g1, g2])
        assert len(m.skip_edges) == len(g1.skip_edges) + len(g2.skip_edges)
        if len(g2.skip_edges):
            shifted = m.skip_edges[len(g1.skip_edges) :]
            np.testing.assert_array_equal(
                shifted, g2.skip_edges + g1.num_nodes
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            merge([])

    def test_mixed_vocabulary_rejected(self):
        from repro.graphdata import from_netlist

        g1 = graph_of(ripple_adder(3))
        g2 = from_netlist(parity(4), num_patterns=64)
        with pytest.raises(ValueError, match="vocabularies"):
            merge([g1, g2])


class TestForwardSchedule:
    def test_covers_every_edge_once(self):
        g = graph_of(ripple_adder(4))
        sched = LevelSchedule.forward(g)
        seen = []
        for group in sched:
            for k in range(len(group.src)):
                seen.append((int(group.src[k]), int(group.nodes[group.seg[k]])))
        assert sorted(seen) == sorted(map(tuple, g.edges.tolist()))

    def test_levels_ascend_and_complete(self):
        g = graph_of(ripple_adder(4))
        sched = LevelSchedule.forward(g)
        last = 0
        covered = set()
        for group in sched:
            lv = int(g.levels[group.nodes[0]])
            assert (g.levels[group.nodes] == lv).all()
            assert lv > last
            last = lv
            covered.update(int(v) for v in group.nodes)
        non_pi = {v for v in range(g.num_nodes) if g.levels[v] > 0}
        assert covered == non_pi

    def test_sources_already_processed(self):
        g = graph_of(ripple_adder(5))
        sched = LevelSchedule.forward(g)
        for group in sched:
            lv = int(g.levels[group.nodes[0]])
            assert (g.levels[group.src] < lv).all()

    def test_skip_edges_attached_at_target_level(self):
        g = graph_of(ripple_adder(5))
        assert len(g.skip_edges)
        sched = LevelSchedule.forward(g, include_skip=True, pe_levels=4)
        total_skips = 0
        for group in sched:
            total_skips += len(group.skip_src)
            if group.has_skip:
                # 2 * pe_levels sinusoids + 1 skip-indicator column
                assert group.skip_attr.shape == (len(group.skip_src), 9)
                np.testing.assert_array_equal(group.skip_attr[:, -1], 1.0)
                # skip targets must be nodes of this group
                targets = group.nodes[group.skip_seg]
                lv = int(g.levels[group.nodes[0]])
                assert (g.levels[targets] == lv).all()
        assert total_skips == len(g.skip_edges)

    def test_no_skip_by_default(self):
        g = graph_of(ripple_adder(5))
        sched = LevelSchedule.forward(g)
        assert all(not group.has_skip for group in sched)


class TestReverseSchedule:
    def test_covers_every_edge_once_reversed(self):
        g = graph_of(ripple_adder(4))
        sched = LevelSchedule.reverse(g)
        seen = []
        for group in sched:
            for k in range(len(group.src)):
                seen.append((int(group.nodes[group.seg[k]]), int(group.src[k])))
        assert sorted(seen) == sorted(map(tuple, g.edges.tolist()))

    def test_levels_descend(self):
        g = graph_of(ripple_adder(4))
        sched = LevelSchedule.reverse(g)
        levels = [int(g.levels[group.nodes[0]]) for group in sched]
        assert levels == sorted(levels, reverse=True)

    def test_sources_at_higher_levels(self):
        g = graph_of(ripple_adder(4))
        for group in LevelSchedule.reverse(g):
            lv = int(g.levels[group.nodes[0]])
            assert (g.levels[group.src] > lv).all()


class TestUndirectedSchedule:
    def test_single_group_both_directions(self):
        g = graph_of(parity(5))
        sched = LevelSchedule.undirected(g)
        assert len(sched) == 1
        group = sched.groups[0]
        assert len(group.src) == 2 * g.num_edges


class TestPreparedBatch:
    def test_schedules_cached(self):
        batch = prepare([graph_of(ripple_adder(3))])
        s1 = batch.forward_schedule(True, 8)
        s2 = batch.forward_schedule(True, 8)
        assert s1 is s2
        assert batch.reverse_schedule() is batch.reverse_schedule()
        assert batch.undirected_schedule() is batch.undirected_schedule()

    def test_features_match_graph(self):
        g = graph_of(ripple_adder(3))
        batch = prepare([g])
        assert batch.x.shape == (g.num_nodes, 3)
        np.testing.assert_array_equal(batch.labels, g.labels)


class TestVectorisedScheduleBuild:
    """The argsort-based builders must reproduce the per-level-scan
    construction exactly (group order, node order, source order)."""

    def _reference_forward_groups(self, g):
        edges = g.edges
        dst_level = g.levels[edges[:, 1]]
        groups = []
        for lv in range(1, int(g.levels.max()) + 1):
            sel = np.nonzero(dst_level == lv)[0]
            if sel.size == 0:
                continue
            e = edges[sel]
            nodes, seg = np.unique(e[:, 1], return_inverse=True)
            groups.append((nodes, e[:, 0], seg))
        return groups

    def test_forward_matches_per_level_scan(self):
        g = graph_of(ripple_adder(6))
        sched = LevelSchedule.forward(g)
        expect = self._reference_forward_groups(g)
        assert len(sched) == len(expect)
        for group, (nodes, src, seg) in zip(sched, expect):
            np.testing.assert_array_equal(group.nodes, nodes)
            np.testing.assert_array_equal(group.src, src)
            np.testing.assert_array_equal(group.seg, seg)

    def test_reverse_matches_per_level_scan(self):
        g = graph_of(ripple_adder(6))
        sched = LevelSchedule.reverse(g)
        edges = g.edges
        src_level = g.levels[edges[:, 0]]
        expect = []
        for lv in range(int(g.levels.max()) - 1, -1, -1):
            sel = np.nonzero(src_level == lv)[0]
            if sel.size == 0:
                continue
            e = edges[sel]
            nodes, seg = np.unique(e[:, 0], return_inverse=True)
            expect.append((nodes, e[:, 1], seg))
        assert len(sched) == len(expect)
        for group, (nodes, src, seg) in zip(sched, expect):
            np.testing.assert_array_equal(group.nodes, nodes)
            np.testing.assert_array_equal(group.src, src)
            np.testing.assert_array_equal(group.seg, seg)


class TestCompiledSchedule:
    def _compiled(self, netlist=None, include_skip=True):
        batch = prepare([graph_of(netlist or ripple_adder(5))])
        return batch, batch.compiled_forward_schedule(include_skip, 4)

    def test_cached_on_batch(self):
        batch, cs = self._compiled()
        assert batch.compiled_forward_schedule(True, 4) is cs
        assert (
            batch.compiled_reverse_schedule()
            is batch.compiled_reverse_schedule()
        )
        assert (
            batch.compiled_undirected_schedule()
            is batch.compiled_undirected_schedule()
        )

    def test_skip_edges_folded_with_attr_blocks(self):
        batch, cs = self._compiled()
        sched = batch.forward_schedule(True, 4)
        total_skip = sum(len(g.skip_src) for g in sched)
        assert total_skip > 0
        for level, compiled in zip(sched, cs):
            n_real = len(level.src)
            assert len(compiled.src) == n_real + len(level.skip_src)
            assert compiled.edge_attr.shape == (len(compiled.src), 9)
            # real edges carry zero attributes, skips their PE rows
            np.testing.assert_array_equal(compiled.edge_attr[:n_real], 0.0)
            if level.has_skip:
                np.testing.assert_array_equal(
                    compiled.edge_attr[n_real:], level.skip_attr
                )

    def test_x_rows_are_group_features(self):
        batch, cs = self._compiled()
        for group in cs:
            np.testing.assert_array_equal(
                group.x_rows, batch.x[group.nodes]
            )

    def test_written_nodes_unique_and_match_groups(self):
        _, cs = self._compiled()
        all_nodes = np.concatenate([g.nodes for g in cs])
        assert np.unique(all_nodes).size == all_nodes.size
        np.testing.assert_array_equal(cs.written, all_nodes)

    def test_gather_plan_provenance(self):
        """Every source row must be attributed to the group that wrote it
        last (or the pass input), with correct local row indices."""
        batch, cs = self._compiled()
        writer = {}
        for gi, group in enumerate(cs):
            for split in group.gather_plan:
                positions = (
                    np.arange(len(group.src))
                    if split.positions is None
                    else split.positions
                )
                src_nodes = group.src[positions]
                local = split.layout.segment_ids
                if split.producer == -1:
                    for node, row in zip(src_nodes, local):
                        assert node not in writer
                        assert row == node
                else:
                    producer_nodes = cs.groups[split.producer].nodes
                    for node, row in zip(src_nodes, local):
                        assert writer[node] == split.producer
                        assert producer_nodes[row] == node
            for pos, node in enumerate(group.nodes):
                writer[int(node)] = gi

    def test_no_edge_attr_without_skip(self):
        _, cs = self._compiled(include_skip=False)
        assert all(group.edge_attr is None for group in cs)


class TestPositionalEncoding:
    def test_shape_and_range(self):
        pe = positional_encoding(np.array([1, 5, 20]), num_levels=8)
        assert pe.shape == (3, 16)
        assert (np.abs(pe) <= 1.0 + 1e-6).all()

    def test_distinct_distances_distinct_codes(self):
        pe = positional_encoding(np.arange(1, 30), num_levels=8)
        for i in range(len(pe)):
            for j in range(i + 1, len(pe)):
                assert not np.allclose(pe[i], pe[j]), (i, j)

    def test_zero_distance_is_cosine_one(self):
        pe = positional_encoding(np.array([0]), num_levels=4)
        np.testing.assert_allclose(pe[0, 0::2], 0.0, atol=1e-7)  # sines
        np.testing.assert_allclose(pe[0, 1::2], 1.0, atol=1e-7)  # cosines

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            positional_encoding(np.array([1]), num_levels=0)


class TestMergeSchedules:
    """merge_schedules must reproduce direct scheduling of merge(graphs).

    This is what lets ``repro serve`` batch cached single-circuit
    prepares without recompiling the merged graph.
    """

    def _graphs(self):
        return [
            graph_of(ripple_adder(3)),
            graph_of(parity(5)),
            graph_of(ripple_adder(2)),
        ]

    @staticmethod
    def _assert_same_schedule(got, want):
        assert got.num_nodes == want.num_nodes
        assert len(got) == len(want)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g.nodes, w.nodes)
            np.testing.assert_array_equal(g.src, w.src)
            np.testing.assert_array_equal(g.seg, w.seg)
            assert g.has_skip == w.has_skip
            np.testing.assert_array_equal(g.skip_src, w.skip_src)
            np.testing.assert_array_equal(g.skip_seg, w.skip_seg)
            np.testing.assert_array_equal(g.skip_attr, w.skip_attr)

    def test_forward_matches_direct_construction(self):
        from repro.graphdata import merge_schedules

        graphs = self._graphs()
        merged = merge(graphs)
        got = merge_schedules(
            [LevelSchedule.forward(g) for g in graphs], graphs
        )
        self._assert_same_schedule(got, LevelSchedule.forward(merged))

    def test_forward_with_skip_matches(self):
        from repro.graphdata import merge_schedules

        graphs = self._graphs()
        merged = merge(graphs)
        got = merge_schedules(
            [LevelSchedule.forward(g, include_skip=True) for g in graphs],
            graphs,
        )
        self._assert_same_schedule(
            got, LevelSchedule.forward(merged, include_skip=True)
        )

    def test_reverse_matches_direct_construction(self):
        from repro.graphdata import merge_schedules

        graphs = self._graphs()
        merged = merge(graphs)
        got = merge_schedules(
            [LevelSchedule.reverse(g) for g in graphs],
            graphs,
            descending=True,
        )
        self._assert_same_schedule(got, LevelSchedule.reverse(merged))

    def test_single_graph_is_identity(self):
        from repro.graphdata import merge_schedules

        g = graph_of(parity(4))
        sched = LevelSchedule.forward(g)
        self._assert_same_schedule(merge_schedules([sched], [g]), sched)

    def test_length_mismatch_rejected(self):
        from repro.graphdata import merge_schedules

        g = graph_of(parity(4))
        with pytest.raises(ValueError, match="one graph per schedule"):
            merge_schedules([LevelSchedule.forward(g)], [g, g])

    def test_empty_rejected(self):
        from repro.graphdata import merge_schedules

        with pytest.raises(ValueError, match="empty"):
            merge_schedules([], [])


class TestPassBlock:
    """The compiled schedule's packed per-pass block layout."""

    def _schedule(self, include_skip=True):
        batch = prepare([graph_of(ripple_adder(5))])
        return batch.compiled_forward_schedule(include_skip, 4)

    def test_offsets_are_group_cumsums(self):
        cs = self._schedule()
        block = cs.block()
        node_sizes = [len(g.nodes) for g in cs]
        edge_sizes = [len(g.src) for g in cs]
        np.testing.assert_array_equal(
            block.node_offsets, np.cumsum([0] + node_sizes)
        )
        np.testing.assert_array_equal(
            block.edge_offsets, np.cumsum([0] + edge_sizes)
        )
        for group in cs:
            assert block.node_offsets[0] == 0
            o = group.node_offset
            np.testing.assert_array_equal(
                block.written[o:o + len(group.nodes)], group.nodes
            )

    def test_buffers_concatenate_group_data(self):
        cs = self._schedule()
        block = cs.block()
        assert block.num_written == sum(len(g.nodes) for g in cs)
        assert block.num_edges == sum(len(g.src) for g in cs)
        np.testing.assert_array_equal(
            block.x_rows, np.concatenate([g.x_rows for g in cs])
        )
        np.testing.assert_array_equal(
            block.counts,
            np.concatenate([g.seg_layout.counts for g in cs]),
        )
        np.testing.assert_array_equal(
            block.edge_attr, np.concatenate([g.edge_attr for g in cs])
        )
        np.testing.assert_array_equal(block.written, cs.written)

    def test_cached_and_no_attr_without_skip(self):
        cs = self._schedule()
        assert cs.block() is cs.block()
        no_skip = self._schedule(include_skip=False)
        assert no_skip.block().edge_attr is None


class TestBatchInterleaving:
    """Level-keyed groups interleave independent circuits: a merged
    batch's pass depth is the MAX circuit depth, not the sum."""

    def test_merged_group_count_is_max_of_parts(self):
        g_deep = graph_of(ripple_adder(6))
        g_shallow = graph_of(parity(4))
        deep_cs = prepare([g_deep]).compiled_forward_schedule(False, 0)
        shallow_cs = prepare([g_shallow]).compiled_forward_schedule(False, 0)
        assert len(shallow_cs.groups) < len(deep_cs.groups)
        merged_cs = prepare([g_deep, g_shallow]).compiled_forward_schedule(
            False, 0
        )
        assert len(merged_cs.groups) == max(
            len(deep_cs.groups), len(shallow_cs.groups)
        )

    def test_same_level_nodes_share_groups(self):
        g1 = graph_of(ripple_adder(4))
        g2 = graph_of(ripple_adder(4), seed=1)
        merged = prepare([g1, g2])
        cs = merged.compiled_forward_schedule(False, 0)
        levels = merged.graph.levels
        boundary = g1.num_nodes
        crossing = sum(
            1
            for group in cs
            if (group.nodes < boundary).any()
            and (group.nodes >= boundary).any()
        )
        assert crossing > 0  # both circuits genuinely share level groups
        for group in cs:
            assert np.unique(levels[group.nodes]).size == 1
