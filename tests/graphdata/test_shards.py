"""Tests for the deterministic ``.npz`` shard format."""

import time

import numpy as np
import pytest

from repro.datagen.generators import parity, ripple_adder
from repro.graphdata import from_aig, read_shard, write_shard
from repro.graphdata.shards import (
    file_sha256,
    iter_shard,
    load_manifest,
    write_npz_deterministic,
)
from repro.synth import synthesize


def sample_graphs(n=3):
    graphs = []
    for k in range(n):
        nl = ripple_adder(3 + k) if k % 2 else parity(4 + k)
        graphs.append(from_aig(synthesize(nl), num_patterns=256, seed=k))
    return graphs


class TestDeterministicNpz:
    def test_bytes_independent_of_time(self, tmp_path):
        arrays = {"a": np.arange(10), "b": np.ones((3, 2), dtype=np.float32)}
        write_npz_deterministic(tmp_path / "x.npz", arrays)
        time.sleep(0.05)  # np.savez would pick up a different zip timestamp
        write_npz_deterministic(tmp_path / "y.npz", arrays)
        assert (tmp_path / "x.npz").read_bytes() == (
            tmp_path / "y.npz"
        ).read_bytes()

    def test_loadable_by_numpy(self, tmp_path):
        arrays = {"m": np.arange(6).reshape(2, 3)}
        write_npz_deterministic(tmp_path / "x.npz", arrays)
        with np.load(tmp_path / "x.npz") as data:
            assert np.array_equal(data["m"], arrays["m"])


class TestShardRoundtrip:
    def test_all_fields_preserved(self, tmp_path):
        graphs = sample_graphs()
        write_shard(tmp_path / "s.npz", graphs)
        loaded = read_shard(tmp_path / "s.npz")
        assert len(loaded) == len(graphs)
        for orig, back in zip(graphs, loaded):
            assert back.name == orig.name
            assert back.type_names == orig.type_names
            for field in (
                "node_type",
                "edges",
                "levels",
                "labels",
                "skip_edges",
                "skip_level_diff",
            ):
                a, b = getattr(orig, field), getattr(back, field)
                assert a.dtype == b.dtype, field
                assert np.array_equal(a, b), field
            back.validate()

    def test_empty_shard(self, tmp_path):
        write_shard(tmp_path / "e.npz", [])
        assert read_shard(tmp_path / "e.npz") == []

    def test_sha_matches_file(self, tmp_path):
        sha = write_shard(tmp_path / "s.npz", sample_graphs(1))
        assert sha == file_sha256(tmp_path / "s.npz")

    def test_version_checked(self, tmp_path):
        write_npz_deterministic(
            tmp_path / "bad.npz",
            {"format_version": np.int64(99), "num_graphs": np.int64(0)},
        )
        with pytest.raises(ValueError, match="format version"):
            read_shard(tmp_path / "bad.npz")


class TestLoadManifest:
    def test_missing(self, tmp_path):
        assert load_manifest(tmp_path) is None

    def test_unparsable(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{not json")
        assert load_manifest(tmp_path) is None

    def test_unknown_version(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"format_version": 99}')
        assert load_manifest(tmp_path) is None


class TestIterShard:
    def test_matches_read_shard(self, tmp_path):
        graphs = sample_graphs()
        write_shard(tmp_path / "s.npz", graphs)
        streamed = list(iter_shard(tmp_path / "s.npz"))
        loaded = read_shard(tmp_path / "s.npz")
        assert len(streamed) == len(loaded) == len(graphs)
        for a, b in zip(streamed, loaded):
            assert a.name == b.name
            assert np.array_equal(a.edges, b.edges)
            assert np.array_equal(a.labels, b.labels)

    def test_lazy_one_graph_at_a_time(self, tmp_path):
        # the generator yields without materialising the whole shard:
        # taking one graph and abandoning the iterator must not decode
        # (or leak) the rest
        write_shard(tmp_path / "s.npz", sample_graphs(3))
        it = iter_shard(tmp_path / "s.npz")
        first = next(it)
        first.validate()
        it.close()  # releases the archive cleanly mid-scan

    def test_version_checked_before_first_yield(self, tmp_path):
        write_npz_deterministic(
            tmp_path / "bad.npz",
            {"format_version": np.int64(99), "num_graphs": np.int64(0)},
        )
        with pytest.raises(ValueError, match="format version"):
            next(iter_shard(tmp_path / "bad.npz"))
