"""WindowedSchedule partition invariants (the streaming compile layer).

The windowed pass runner's correctness rests on structural guarantees of
:class:`~repro.graphdata.batching.WindowedSchedule`: every level group
lands in exactly one window in schedule order, written-node budgets are
respected (a single oversized group becomes its own window rather than
failing), and each window's ``ext_rows`` cut set names exactly the
earlier-window rows its gather plans read through the
:data:`~repro.graphdata.batching.FRONTIER` sentinel.
"""

import numpy as np
import pytest

from repro.datagen.generators import parity, ripple_adder
from repro.graphdata import LevelSchedule, from_aig, prepare
from repro.graphdata.batching import FRONTIER, PASS_INPUT, WindowedSchedule
from repro.synth import synthesize


def make_batch():
    g1 = from_aig(synthesize(ripple_adder(6)), num_patterns=128, seed=0)
    g2 = from_aig(synthesize(parity(5)), num_patterns=128, seed=1)
    return prepare([g1, g2])


def build(budget, edge_budget=None, include_skip=False):
    batch = make_batch()
    sched = LevelSchedule.forward(
        batch.graph, include_skip=include_skip, pe_levels=4
    )
    attr_dim = 2 * 4 + 1 if include_skip else None
    return sched, WindowedSchedule.build(
        sched, batch.x, budget,
        edge_attr_dim=attr_dim, edge_budget=edge_budget,
    )


class TestPartition:
    @pytest.mark.parametrize("budget", [1, 5, 17, 10**9])
    def test_windows_cover_all_groups_in_order(self, budget):
        sched, ws = build(budget)
        assert ws.num_groups == len(sched.groups)
        windowed_nodes = np.concatenate(
            [cg.nodes for w in ws for cg in w.compiled.groups]
        )
        full_nodes = np.concatenate([g.nodes for g in sched])
        np.testing.assert_array_equal(windowed_nodes, full_nodes)
        np.testing.assert_array_equal(ws.written, full_nodes)

    @pytest.mark.parametrize("budget", [5, 17, 64])
    def test_node_budget_respected(self, budget):
        _, ws = build(budget)
        for w in ws:
            if len(w.compiled.groups) > 1:
                assert w.num_written <= budget

    def test_budget_one_isolates_every_group(self):
        sched, ws = build(1)
        assert len(ws) == len(sched.groups)
        for w in ws:
            assert len(w.compiled.groups) == 1

    def test_huge_budget_single_window(self):
        _, ws = build(10**9)
        assert len(ws) == 1
        assert len(ws.windows[0].ext_rows) == 0

    def test_edge_budget_respected(self):
        _, ws = build(10**9, edge_budget=24)
        assert len(ws) > 1
        for w in ws:
            if len(w.compiled.groups) > 1:
                edges = sum(len(cg.src) for cg in w.compiled.groups)
                assert edges <= 24

    def test_written_offsets_are_contiguous(self):
        _, ws = build(9)
        stop = 0
        for w in ws:
            assert w.written_start == stop
            assert w.num_written == sum(
                len(cg.nodes) for cg in w.compiled.groups
            )
            stop = w.written_stop
        assert stop == len(ws.written)

    @pytest.mark.parametrize("bad", [0, -3])
    def test_bad_node_budget_rejected(self, bad):
        batch = make_batch()
        sched = LevelSchedule.forward(batch.graph)
        with pytest.raises(ValueError, match="node_budget"):
            WindowedSchedule.build(sched, batch.x, bad)

    def test_bad_edge_budget_rejected(self):
        batch = make_batch()
        sched = LevelSchedule.forward(batch.graph)
        with pytest.raises(ValueError, match="edge_budget"):
            WindowedSchedule.build(sched, batch.x, 8, edge_budget=0)


class TestFrontier:
    @pytest.mark.parametrize("budget", [1, 5, 17])
    def test_ext_rows_sorted_unique_and_written_earlier(self, budget):
        _, ws = build(budget)
        written_before = np.zeros(0, np.int64)
        for w in ws:
            ext = w.ext_rows
            assert (np.diff(ext) > 0).all()  # sorted, unique
            assert np.isin(ext, written_before).all()
            written_before = np.concatenate(
                [written_before]
                + [cg.nodes for cg in w.compiled.groups]
            )

    @pytest.mark.parametrize("include_skip", [False, True])
    def test_gather_plans_reference_valid_producers(self, include_skip):
        _, ws = build(5, include_skip=include_skip)
        for w in ws:
            groups = w.compiled.groups
            for gi, cg in enumerate(groups):
                for split in cg.gather_plan:
                    if split.producer == PASS_INPUT:
                        assert split.layout.num_segments == ws.num_nodes
                    elif split.producer == FRONTIER:
                        assert split.layout.num_segments == len(w.ext_rows)
                        rows = split.layout.segment_ids
                        assert (rows >= 0).all()
                        assert (rows < len(w.ext_rows)).all()
                    else:
                        # in-window producer: strictly earlier group
                        assert 0 <= split.producer < gi
                        assert split.layout.num_segments == len(
                            groups[split.producer].nodes
                        )

    def test_frontier_rows_resolve_to_global_ids(self):
        # searchsorted-compressed FRONTIER rows must map back through
        # ext_rows to exactly the global source ids of the split
        sched, ws = build(5)
        for w in ws:
            for cg in w.compiled.groups:
                for split in cg.gather_plan:
                    if split.producer != FRONTIER:
                        continue
                    chosen = (
                        cg.src
                        if split.positions is None
                        else cg.src[split.positions]
                    )
                    np.testing.assert_array_equal(
                        w.ext_rows[split.layout.segment_ids], chosen
                    )

    def test_max_frontier_rows_bounded_by_schedule(self):
        _, ws = build(5)
        assert ws.max_frontier_rows == max(
            len(w.ext_rows) for w in ws
        )
