"""Tests for the streaming DataLoader: reshuffle, prefetch, shard parity."""

import numpy as np
import pytest

from repro.graphdata import (
    DataLoader,
    ShardedCircuitDataset,
    as_loader,
    epoch_seed,
)

from ..helpers import build_tiny_shards, tiny_circuit_dataset as make_dataset


def batch_signature(batches):
    """Order-sensitive fingerprint of an epoch's batches."""
    return [
        (b.num_nodes, float(np.sum(b.labels))) for b in batches
    ]


@pytest.fixture(scope="module")
def shard_dir(tmp_path_factory):
    return build_tiny_shards(tmp_path_factory.mktemp("shards") / "tiny")


class TestEpochSeed:
    def test_deterministic(self):
        assert epoch_seed(3, 7) == epoch_seed(3, 7)

    def test_varies_by_epoch_and_seed(self):
        seeds = {epoch_seed(s, e) for s in range(4) for e in range(4)}
        assert len(seeds) == 16


class TestReshuffle:
    def test_same_epoch_same_order(self):
        dl = DataLoader(make_dataset(), 3, seed=0)
        assert batch_signature(dl.epoch(2)) == batch_signature(dl.epoch(2))

    def test_different_epochs_different_order(self):
        dl = DataLoader(make_dataset(), 3, seed=0)
        sigs = [batch_signature(dl.epoch(e)) for e in range(4)]
        assert any(s != sigs[0] for s in sigs[1:])

    def test_no_shuffle_is_storage_order(self):
        ds = make_dataset()
        dl = DataLoader(ds, 3, shuffle=False)
        expected = batch_signature(ds.batches(3, seed=None))
        assert batch_signature(dl.epoch(0)) == expected
        assert batch_signature(dl.epoch(5)) == expected

    def test_every_epoch_covers_all_circuits(self):
        ds = make_dataset(7)
        dl = DataLoader(ds, 2, seed=1)
        total = sum(g.num_nodes for g in ds)
        for epoch in range(3):
            assert sum(b.num_nodes for b in dl.epoch(epoch)) == total


class TestPrefetch:
    def test_prefetch_matches_synchronous(self):
        ds = make_dataset()
        eager = DataLoader(ds, 3, seed=4, prefetch=0)
        threaded = DataLoader(ds, 3, seed=4, prefetch=2)
        assert batch_signature(eager.epoch(1)) == batch_signature(
            threaded.epoch(1)
        )

    def test_close_mid_epoch(self):
        dl = DataLoader(make_dataset(), 1, seed=0, prefetch=1)
        it = dl.epoch(0)
        next(it)
        it.close()  # must not hang or raise

    def test_materialize_closes_thread(self):
        dl = DataLoader(make_dataset(6), 2, seed=0, prefetch=2)
        assert len(dl.materialize()) == len(dl)

    def test_abandoned_iterator_releases_thread(self):
        import gc
        import threading
        import time

        before = threading.active_count()
        dl = DataLoader(make_dataset(8), 1, seed=0, prefetch=1)
        it = dl.epoch(0)
        next(it)
        del it  # abandoned without close(); finalizer must stop the worker
        gc.collect()
        deadline = time.time() + 5.0
        while threading.active_count() > before and time.time() < deadline:
            time.sleep(0.05)
        assert threading.active_count() <= before

    def test_exception_propagates(self):
        class Broken:
            def __len__(self):
                return 1

            def batches(self, batch_size, seed=None):
                raise RuntimeError("boom")
                yield  # pragma: no cover

        dl = DataLoader(Broken(), 1, prefetch=1)
        with pytest.raises(RuntimeError, match="boom"):
            list(dl.epoch(0))


class TestPrefetchThreadLifecycle:
    """The worker thread must never outlive (or outblock) its epoch."""

    def test_thread_joined_on_early_close(self):
        dl = DataLoader(make_dataset(), 1, seed=0, prefetch=1)
        it = dl.epoch(0)
        next(it)
        it.close()
        assert not it._thread.is_alive()

    def test_close_is_idempotent(self):
        it = DataLoader(make_dataset(4), 2, prefetch=1).epoch(0)
        it.close()
        it.close()
        assert not it._thread.is_alive()

    def test_next_after_close_raises_stop_iteration(self):
        """Iterating a closed epoch must not block on the drained queue."""
        it = DataLoader(make_dataset(4), 2, prefetch=1).epoch(0)
        next(it)
        it.close()
        with pytest.raises(StopIteration):
            next(it)

    def test_thread_joined_after_exhaustion(self):
        it = DataLoader(make_dataset(4), 2, prefetch=1).epoch(0)
        batches = list(it)
        assert len(batches) == 2
        assert not it._thread.is_alive()
        with pytest.raises(StopIteration):
            next(it)

    def test_mid_stream_exception_propagates_and_joins(self):
        """A worker dying mid-epoch surfaces its error exactly once and
        leaves no live thread behind."""
        good = make_dataset(4)

        class BreaksAfterTwo:
            def __len__(self):
                return len(good)

            def batches(self, batch_size, seed=None):
                for i, batch in enumerate(good.batches(batch_size, seed=seed)):
                    if i == 2:
                        raise RuntimeError("mid-stream boom")
                    yield batch

        it = DataLoader(BreaksAfterTwo(), 1, shuffle=False, prefetch=1).epoch(0)
        assert next(it) is not None
        assert next(it) is not None
        with pytest.raises(RuntimeError, match="mid-stream boom"):
            next(it)
        assert not it._thread.is_alive()
        # the stream is over: later pulls terminate instead of hanging
        with pytest.raises(StopIteration):
            next(it)


class TestShardedParity:
    def test_sequential_parity_with_materialized(self, shard_dir):
        sharded = ShardedCircuitDataset(shard_dir)
        in_memory = sharded.materialize()
        a = DataLoader(sharded, 2, shuffle=False)
        b = DataLoader(in_memory, 2, shuffle=False)
        assert batch_signature(a.epoch(0)) == batch_signature(b.epoch(0))

    def test_shuffled_epoch_covers_everything(self, shard_dir):
        sharded = ShardedCircuitDataset(shard_dir)
        dl = DataLoader(sharded, 2, seed=3, prefetch=2)
        total = sum(g.num_nodes for g in sharded)
        assert sum(b.num_nodes for b in dl.epoch(0)) == total


class TestValidationAndCoercion:
    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(make_dataset(2), 0)

    def test_bad_prefetch(self):
        with pytest.raises(ValueError):
            DataLoader(make_dataset(2), 1, prefetch=-1)

    def test_len_counts_batches(self):
        assert len(DataLoader(make_dataset(7), 3)) == 3

    def test_as_loader_passthrough(self):
        dl = DataLoader(make_dataset(2), 1)
        assert as_loader(dl, 99) is dl

    def test_as_loader_wraps_dataset(self):
        ds = make_dataset(2)
        dl = as_loader(ds, 2, shuffle=False, prefetch=0)
        assert isinstance(dl, DataLoader)
        assert dl.batch_size == 2 and dl.prefetch == 0
