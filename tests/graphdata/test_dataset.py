"""Tests for CircuitDataset: splits, batching, statistics."""

import pytest

from ..helpers import tiny_circuit_dataset as make_dataset


class TestSplit:
    def test_fraction_respected(self):
        ds = make_dataset(10)
        train, test = ds.split(0.8, seed=0)
        assert len(train) == 8
        assert len(test) == 2

    def test_disjoint_and_complete(self):
        ds = make_dataset(10)
        train, test = ds.split(0.7, seed=1)
        train_ids = {id(g) for g in train}
        test_ids = {id(g) for g in test}
        assert not train_ids & test_ids
        assert len(train_ids | test_ids) == 10

    def test_deterministic(self):
        ds = make_dataset(6)
        a1, _ = ds.split(0.5, seed=5)
        a2, _ = ds.split(0.5, seed=5)
        assert [id(g) for g in a1] == [id(g) for g in a2]

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            make_dataset(4).split(1.5)


class TestBatches:
    def test_batches_cover_everything(self):
        ds = make_dataset(7)
        batches = list(ds.batches(batch_size=3))
        assert len(batches) == 3
        total_nodes = sum(b.num_nodes for b in batches)
        assert total_nodes == sum(g.num_nodes for g in ds)

    def test_shuffling_changes_order(self):
        ds = make_dataset(8)
        a = [b.num_nodes for b in ds.batches(2, seed=1)]
        c = [b.num_nodes for b in ds.batches(2, seed=2)]
        assert a != c or len(set(a)) == 1

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(make_dataset(2).batches(0))


class TestStatistics:
    def test_ranges(self):
        ds = make_dataset(6)
        lo, hi = ds.node_count_range()
        assert 0 < lo <= hi
        lo_l, hi_l = ds.level_range()
        assert 0 < lo_l <= hi_l

    def test_summary_keys(self):
        s = make_dataset(3).summary()
        assert set(s) == {"name", "circuits", "nodes", "levels"}
        assert s["circuits"] == 3
