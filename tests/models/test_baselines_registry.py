"""Tests for baseline models (GCN, DAG-ConvGNN) and the model registry."""

import numpy as np
import pytest

from repro.datagen.generators import parity, ripple_adder
from repro.graphdata import from_aig, prepare
from repro.models import (
    AGGREGATOR_NAMES,
    DAGConvGNN,
    DeepGate,
    GCN,
    ModelConfig,
    build_model,
    table2_configs,
)
from repro.nn import l1_loss, no_grad
from repro.synth import synthesize


def make_batch(seed=0):
    g1 = from_aig(synthesize(ripple_adder(3)), num_patterns=256, seed=seed)
    g2 = from_aig(synthesize(parity(5)), num_patterns=256, seed=seed + 1)
    return prepare([g1, g2])


class TestGCN:
    def test_forward_shape(self):
        batch = make_batch()
        model = GCN(dim=8, num_layers=2, rng=np.random.default_rng(0))
        with no_grad():
            pred = model(batch)
        assert pred.shape == (batch.num_nodes,)
        assert (pred.data > 0).all() and (pred.data < 1).all()

    def test_gradients_flow(self):
        batch = make_batch()
        model = GCN(dim=8, num_layers=2, rng=np.random.default_rng(0))
        l1_loss(model(batch), batch.labels).backward()
        assert all(p.grad is not None for p in model.parameters())

    def test_per_layer_parameters(self):
        m1 = GCN(dim=8, num_layers=1, rng=np.random.default_rng(0))
        m2 = GCN(dim=8, num_layers=3, rng=np.random.default_rng(0))
        assert m2.num_parameters() > m1.num_parameters()


class TestBaselineCompiledEquivalence:
    """All four AGGREGATE designs must match the reference loop through
    both layered baselines — values and parameter gradients."""

    @pytest.mark.parametrize("agg", AGGREGATOR_NAMES)
    @pytest.mark.parametrize("cls", [GCN, DAGConvGNN])
    def test_forward_matches_reference(self, cls, agg):
        batch = make_batch()
        ref = cls(dim=8, num_layers=2, aggregator=agg,
                  rng=np.random.default_rng(0), compiled=False)
        fast = cls(dim=8, num_layers=2, aggregator=agg,
                   rng=np.random.default_rng(0), compiled=True)
        with no_grad():
            np.testing.assert_allclose(
                ref(batch).data, fast(batch).data, rtol=1e-5, atol=1e-6
            )

    @pytest.mark.parametrize("agg", AGGREGATOR_NAMES)
    @pytest.mark.parametrize("cls", [GCN, DAGConvGNN])
    def test_gradients_match_reference(self, cls, agg):
        batch = make_batch()
        ref = cls(dim=8, num_layers=2, aggregator=agg,
                  rng=np.random.default_rng(0), compiled=False)
        fast = cls(dim=8, num_layers=2, aggregator=agg,
                   rng=np.random.default_rng(0), compiled=True)
        weights = np.linspace(-1, 1, batch.num_nodes).astype(np.float32)
        from repro.nn import Tensor

        for model in (ref, fast):
            (model(batch) * Tensor(weights)).sum().backward()
        for (name, p_ref), (_, p_fast) in zip(
            ref.named_parameters(), fast.named_parameters()
        ):
            assert p_ref.grad is not None and p_fast.grad is not None, name
            np.testing.assert_allclose(
                p_ref.grad, p_fast.grad, rtol=2e-4, atol=2e-5,
                err_msg=f"gradient mismatch for {name}",
            )


class TestDAGConvGNN:
    def test_forward_shape(self):
        batch = make_batch()
        model = DAGConvGNN(dim=8, num_layers=2, rng=np.random.default_rng(0))
        with no_grad():
            pred = model(batch)
        assert pred.shape == (batch.num_nodes,)

    def test_respects_direction(self):
        """DAG-ConvGNN and GCN with identical seeds differ (edge handling)."""
        batch = make_batch()
        a = DAGConvGNN(dim=8, num_layers=2, rng=np.random.default_rng(1))
        b = GCN(dim=8, num_layers=2, rng=np.random.default_rng(1))
        b.load_state_dict(a.state_dict())
        with no_grad():
            assert not np.allclose(a(batch).data, b(batch).data)


class TestRegistry:
    def test_table2_has_13_rows(self):
        configs = table2_configs()
        assert len(configs) == 13
        labels = [c.label for c in configs]
        assert len(set(labels)) == 13
        assert "DeepGate / Attention w/ SC" in labels
        assert "DeepGate / Attention w/o SC" in labels

    def test_build_every_config(self):
        batch = make_batch()
        for config in table2_configs():
            model = build_model(
                config, dim=4, num_iterations=1, num_layers=1, seed=0
            )
            with no_grad():
                pred = model(batch)
            assert pred.shape == (batch.num_nodes,), config.label

    def test_kinds_mapped_to_classes(self):
        assert isinstance(build_model(ModelConfig("gcn", "conv_sum"), dim=4), GCN)
        assert isinstance(
            build_model(ModelConfig("dag_conv", "deepset"), dim=4), DAGConvGNN
        )
        rec = build_model(ModelConfig("dag_rec", "gated_sum"), dim=4)
        assert isinstance(rec, DeepGate)
        assert rec.input_mode == "init_only"
        assert not rec.use_skip
        dg = build_model(ModelConfig("deepgate", "attention", True), dim=4)
        assert dg.use_skip and dg.input_mode == "fixed_x"

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            build_model(ModelConfig("bogus", "conv_sum"))
        with pytest.raises(ValueError):
            build_model(ModelConfig("gcn", "bogus"))

    def test_parameter_counts_comparable(self):
        """Paper matches parameter budgets across models (same order)."""
        counts = {}
        for config in table2_configs():
            model = build_model(config, dim=16, num_iterations=2, num_layers=2)
            counts[config.label] = model.num_parameters()
        lo, hi = min(counts.values()), max(counts.values())
        assert hi <= 6 * lo, counts


class TestModelCodes:
    def test_code_roundtrip_for_grid(self):
        from repro.models.registry import config_from_code

        for config in table2_configs():
            assert config_from_code(config.code) == config

    def test_sc_suffix(self):
        from repro.models.registry import config_from_code

        config = config_from_code("deepgate/attention/sc")
        assert config.use_skip
        assert config.code == "deepgate/attention/sc"

    def test_bad_codes_rejected(self):
        from repro.models.registry import config_from_code

        for bad in ("deepgate", "deepgate/attention/xx", "nope/attention",
                    "gcn/nope", "a/b/c/d"):
            with pytest.raises(ValueError):
                config_from_code(bad)
