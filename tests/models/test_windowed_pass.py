"""Windowed streaming propagation vs the full compiled pass.

The streaming contract, checked over every aggregator × layout × budget:

* forward outputs (and therefore the loss) are **bitwise identical** to
  the full compiled pass for every window budget — including budgets of
  one level group and budgets larger than the whole circuit — because
  both paths compute their pass-wide affine pre-projections through the
  same globally-aligned :data:`GEMM_CHUNK_ROWS` extents;
* parameter and input gradients agree to round-off (window-sized GEMMs
  change summation order, so grads are ``allclose``, not bitwise);
* a finite-difference probe validates the recompute-based backward
  through a window boundary end to end;
* with a spill directory and a tiny store budget the frontier chunks
  round-trip through disk without changing any gradient.
"""

import numpy as np
import pytest

import repro.models.propagation as P
from repro.datagen.generators import parity, ripple_adder
from repro.graphdata import from_aig, prepare
from repro.models import DeepGate
from repro.models.propagation import (
    PASS_LAYOUTS,
    WINDOW_ENV_VAR,
    get_window_budget,
    get_window_stats,
    reset_window_stats,
    set_window_budget,
    use_pass_layout,
    use_window_budget,
)
from repro.nn import Tensor, no_grad
from repro.synth import synthesize

BUDGETS = [1, 7, 64, 10**9]
AGG_CONFIGS = [
    {"aggregator": "attention", "use_skip": True},
    {"aggregator": "conv_sum", "use_skip": False},
    {"aggregator": "deepset", "use_skip": False},
    {"aggregator": "gated_sum", "use_skip": False},
]
AGG_IDS = [c["aggregator"] for c in AGG_CONFIGS]


def make_batch():
    g1 = from_aig(synthesize(ripple_adder(6)), num_patterns=256, seed=0)
    g2 = from_aig(synthesize(parity(5)), num_patterns=256, seed=1)
    return prepare([g1, g2])


def make_model(**kwargs):
    defaults = dict(
        dim=8, num_iterations=2, rng=np.random.default_rng(0),
        compiled=True,
    )
    defaults.update(kwargs)
    return DeepGate(**defaults)


def grads_of(model):
    return {
        name: np.array(p.grad)
        for name, p in model.named_parameters()
        if p.grad is not None
    }


@pytest.mark.parametrize("layout", PASS_LAYOUTS)
@pytest.mark.parametrize("config", AGG_CONFIGS, ids=AGG_IDS)
class TestBitwiseForward:
    @pytest.mark.parametrize("budget", BUDGETS)
    def test_forward_bits_match_full(self, layout, config, budget):
        batch = make_batch()
        model = make_model(**config)
        with use_pass_layout(layout), no_grad():
            expected = model(batch).data
            with use_window_budget(budget):
                actual = model(batch).data
        np.testing.assert_array_equal(actual, expected)

    def test_gradients_match_full(self, layout, config):
        batch = make_batch()
        full = make_model(**config)
        windowed = make_model(**config)
        weights = Tensor(
            np.linspace(-1.0, 1.0, batch.num_nodes).astype(np.float32)
        )
        with use_pass_layout(layout):
            (full(batch) * weights).sum().backward()
            with use_window_budget(7):
                (windowed(batch) * weights).sum().backward()
        g_full, g_win = grads_of(full), grads_of(windowed)
        assert g_full.keys() == g_win.keys()
        for name in g_full:
            np.testing.assert_allclose(
                g_win[name], g_full[name], rtol=2e-4, atol=2e-5,
                err_msg=f"gradient mismatch for {name} ({layout})",
            )


class TestChunkConvention:
    def test_multi_chunk_forward_stays_bitwise(self, monkeypatch):
        # force the pass-wide affine pre-projections through several
        # chunks: the windowed/full bitwise identity must survive
        monkeypatch.setattr(P, "GEMM_CHUNK_ROWS", 64)
        batch = make_batch()
        model = make_model()
        with no_grad():
            expected = model(batch).data
            with use_window_budget(16):
                actual = model(batch).data
        np.testing.assert_array_equal(actual, expected)


@pytest.mark.parametrize("layout", PASS_LAYOUTS)
class TestFiniteDifference:
    def test_parameter_gradients_across_window_boundary(self, layout):
        g = from_aig(synthesize(ripple_adder(3)), num_patterns=128, seed=0)
        batch = prepare([g])
        model = make_model(dim=6)
        weights = Tensor(
            np.linspace(0.2, 1.0, batch.num_nodes).astype(np.float32)
        )

        def loss_value() -> float:
            with no_grad():
                return float((model(batch).data * weights.data).sum())

        # budget 4: every pass crosses several window boundaries, so the
        # FD probe exercises frontier save/recompute, not just one window
        with use_pass_layout(layout), use_window_budget(4):
            model.zero_grad()
            (model(batch) * weights).sum().backward()
            rng = np.random.default_rng(7)
            eps = 2e-3
            for name, p in model.named_parameters():
                assert p.grad is not None, name
                flat = p.data.reshape(-1)
                gflat = np.asarray(p.grad).reshape(-1)
                idx = int(rng.integers(flat.size))
                orig = flat[idx]
                flat[idx] = orig + eps
                fp = loss_value()
                flat[idx] = orig - eps
                fm = loss_value()
                flat[idx] = orig
                numeric = (fp - fm) / (2.0 * eps)
                np.testing.assert_allclose(
                    gflat[idx], numeric, atol=2e-2, rtol=8e-2,
                    err_msg=f"FD mismatch for {name}[{idx}] ({layout})",
                )


class TestSpill:
    def test_spill_reload_roundtrip_preserves_gradients(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        # a few hundred bytes: every frontier chunk beyond the newest is
        # forced through disk
        monkeypatch.setenv("REPRO_STORE_BUDGET_MB", "0.0003")
        batch = make_batch()
        full = make_model()
        spilled = make_model()
        weights = Tensor(
            np.linspace(-1.0, 1.0, batch.num_nodes).astype(np.float32)
        )
        (full(batch) * weights).sum().backward()
        reset_window_stats()
        with use_window_budget(7):
            (spilled(batch) * weights).sum().backward()
        stats = get_window_stats()
        assert stats["spills"] > 0
        assert stats["reloads"] > 0
        g_full, g_win = grads_of(full), grads_of(spilled)
        for name in g_full:
            np.testing.assert_allclose(
                g_win[name], g_full[name], rtol=2e-4, atol=2e-5,
                err_msg=f"gradient mismatch after spill for {name}",
            )
        # every store cleans its spill subdirectory up after the pass
        assert list(tmp_path.iterdir()) == []


class TestStatsAndKnob:
    def test_window_stats_accumulate(self):
        batch = make_batch()
        model = make_model()
        reset_window_stats()
        with use_window_budget(7):
            model.zero_grad()
            model(batch).sum().backward()
        stats = get_window_stats()
        # 2 iterations x (forward + reverse) = 4 windowed passes
        assert stats["passes"] == 4
        assert stats["windows"] > stats["passes"]
        assert stats["frontier_bytes"] >= stats["frontier_rows"] * 4
        assert get_window_stats() == stats  # returns a copy, not a view

    def test_set_window_budget_validates(self):
        with pytest.raises(ValueError, match="window budget"):
            set_window_budget(0)
        assert set_window_budget(None) is None

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv(WINDOW_ENV_VAR, "7")
        monkeypatch.setattr(P, "_active_window_budget", P._UNSET)
        assert get_window_budget() == 7
        for off in ("", "0", "off", "full", "none"):
            monkeypatch.setenv(WINDOW_ENV_VAR, off)
            monkeypatch.setattr(P, "_active_window_budget", P._UNSET)
            assert get_window_budget() is None
        monkeypatch.setenv(WINDOW_ENV_VAR, "not-a-number")
        monkeypatch.setattr(P, "_active_window_budget", P._UNSET)
        with pytest.raises(ValueError, match=WINDOW_ENV_VAR):
            get_window_budget()

    def test_use_window_budget_restores(self):
        before = get_window_budget()
        with use_window_budget(5):
            assert get_window_budget() == 5
        assert get_window_budget() == before
