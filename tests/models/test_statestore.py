"""StateStore unit tests: keyed frontier chunks with bounded residency.

The store is the windowed pass's only carrier of cross-window state, so
its invariants are load-bearing: ``get`` returns exactly the bytes that
were ``put`` (through a disk round trip when the resident budget forces
a spill), eviction picks the *oldest* key (the one the reverse walk
needs last), and ``clear`` leaves nothing behind on disk.
"""

import numpy as np
import pytest

from repro.models.statestore import (
    SPILL_DIR_ENV_VAR,
    STORE_BUDGET_ENV_VAR,
    StateStore,
)


def chunk(seed, shape=(16, 8)):
    return np.random.default_rng(seed).normal(size=shape).astype(np.float32)


class TestInMemory:
    def test_put_get_drop_roundtrip(self):
        store = StateStore()
        rows = chunk(0)
        store.put(3, rows)
        assert len(store) == 1
        np.testing.assert_array_equal(store.get(3), rows)
        store.drop(3)
        assert len(store) == 0

    def test_duplicate_put_rejected(self):
        store = StateStore()
        store.put(1, chunk(0))
        with pytest.raises(KeyError, match="already stored"):
            store.put(1, chunk(1))

    def test_get_missing_rejected(self):
        with pytest.raises(KeyError, match="not stored"):
            StateStore().get(9)

    def test_drop_missing_is_noop(self):
        StateStore().drop(9)

    def test_budget_without_spill_dir_is_advisory(self):
        store = StateStore(budget_bytes=1)
        store.put(0, chunk(0))
        store.put(1, chunk(1))
        assert store.stats["spills"] == 0
        assert len(store) == 2

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="budget_bytes"):
            StateStore(budget_bytes=-1)

    def test_resident_accounting(self):
        store = StateStore()
        a, b = chunk(0), chunk(1)
        store.put(0, a)
        store.put(1, b)
        assert store.stats["resident_bytes"] == a.nbytes + b.nbytes
        assert store.stats["peak_resident_bytes"] == a.nbytes + b.nbytes
        store.drop(0)
        assert store.stats["resident_bytes"] == b.nbytes
        assert store.stats["peak_resident_bytes"] == a.nbytes + b.nbytes


class TestSpill:
    def test_oldest_key_spills_first(self, tmp_path):
        store = StateStore(spill_dir=str(tmp_path), budget_bytes=1)
        store.put(0, chunk(0))
        store.put(1, chunk(1))
        store.put(2, chunk(2))
        # keys 0 and 1 went to disk; the newest stays resident (the
        # store always keeps at least one chunk in memory)
        assert store.stats["spills"] == 2
        assert sorted(store._spilled) == [0, 1]
        assert list(store._resident) == [2]

    def test_get_reloads_and_deletes_spill_file(self, tmp_path):
        store = StateStore(spill_dir=str(tmp_path), budget_bytes=1)
        rows = chunk(7)
        store.put(0, rows.copy())
        store.put(1, chunk(1))
        assert store.stats["spills"] >= 1
        spill_files = list(tmp_path.rglob("*.npz"))
        assert spill_files
        np.testing.assert_array_equal(store.get(0), rows)
        assert store.stats["reloads"] == 1
        # the file is consumed by the reload
        assert all(not p.exists() for p in spill_files)

    def test_clear_removes_spill_directory(self, tmp_path):
        store = StateStore(spill_dir=str(tmp_path), budget_bytes=1)
        for k in range(4):
            store.put(k, chunk(k))
        store.clear()
        assert len(store) == 0
        assert list(tmp_path.iterdir()) == []

    def test_two_stores_share_a_spill_root(self, tmp_path):
        # per-store unique subdirectories: concurrent stores (e.g. tests
        # running in one process) never collide on chunk file names
        s1 = StateStore(spill_dir=str(tmp_path), budget_bytes=1)
        s2 = StateStore(spill_dir=str(tmp_path), budget_bytes=1)
        for s, seed in ((s1, 0), (s2, 100)):
            s.put(0, chunk(seed))
            s.put(1, chunk(seed + 1))
        np.testing.assert_array_equal(s1.get(0), chunk(0))
        np.testing.assert_array_equal(s2.get(0), chunk(100))
        s1.clear()
        s2.clear()


class TestFromEnv:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv(SPILL_DIR_ENV_VAR, raising=False)
        monkeypatch.delenv(STORE_BUDGET_ENV_VAR, raising=False)
        store = StateStore.from_env()
        assert store.budget_bytes is None
        assert store._spill_root is None

    def test_configured(self, monkeypatch, tmp_path):
        monkeypatch.setenv(SPILL_DIR_ENV_VAR, str(tmp_path))
        monkeypatch.setenv(STORE_BUDGET_ENV_VAR, "2.5")
        store = StateStore.from_env()
        assert store.budget_bytes == int(2.5 * 1024 * 1024)
        assert store._spill_root == str(tmp_path)

    def test_bad_budget_rejected(self, monkeypatch):
        monkeypatch.setenv(STORE_BUDGET_ENV_VAR, "lots")
        with pytest.raises(ValueError, match=STORE_BUDGET_ENV_VAR):
            StateStore.from_env()
