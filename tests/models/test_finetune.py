"""Tests for the downstream fine-tuning workflow."""

import numpy as np
import pytest

from repro.datagen.generators import parity, ripple_adder
from repro.graphdata import from_aig, prepare
from repro.models import DeepGate
from repro.models.finetune import DownstreamHead, FineTuner
from repro.synth import synthesize


def make_batches():
    graphs = [
        from_aig(synthesize(ripple_adder(4)), num_patterns=512, seed=0),
        from_aig(synthesize(parity(6)), num_patterns=512, seed=1),
    ]
    return [prepare([g]) for g in graphs]


def backbone():
    return DeepGate(dim=12, num_iterations=2, rng=np.random.default_rng(0))


class TestFineTuner:
    def test_head_learns_a_target(self):
        batches = make_batches()
        # synthetic target: logic level normalised to [0, 1]
        targets = [
            b.graph.levels / max(1, b.graph.levels.max()) for b in batches
        ]
        tuner = FineTuner(backbone(), lr=5e-3)
        history = tuner.fit(batches, targets, epochs=60)
        assert history.train_loss[-1] < history.train_loss[0] * 0.7

    def test_backbone_untouched(self):
        batches = make_batches()
        bb = backbone()
        before = {k: v.copy() for k, v in bb.state_dict().items()}
        tuner = FineTuner(bb)
        tuner.fit(batches, [b.labels for b in batches], epochs=3)
        after = bb.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_embeddings_cached(self):
        batches = make_batches()
        tuner = FineTuner(backbone())
        e1 = tuner.embeddings(batches[0])
        e2 = tuner.embeddings(batches[0])
        assert e1.data is e2.data  # same cached array

    def test_predict_shape(self):
        batches = make_batches()
        tuner = FineTuner(backbone())
        pred = tuner.predict(batches[0])
        assert pred.shape == (batches[0].num_nodes,)
        assert ((pred > 0) & (pred < 1)).all()

    def test_target_validation(self):
        batches = make_batches()
        tuner = FineTuner(backbone())
        with pytest.raises(ValueError, match="one target"):
            tuner.fit(batches, [batches[0].labels], epochs=1)
        with pytest.raises(ValueError, match="target size"):
            tuner.fit(batches, [np.zeros(3), np.zeros(4)], epochs=1)

    def test_custom_head(self):
        head = DownstreamHead(12, np.random.default_rng(1), hidden=6,
                              final_activation=None)
        tuner = FineTuner(backbone(), head=head)
        batches = make_batches()
        pred = tuner.predict(batches[0])
        assert pred.shape == (batches[0].num_nodes,)
