"""Every kernel backend × pass layout must match the reference model.

The compiled fast path has two orthogonal per-process switches — the
GEMM backend (:mod:`repro.nn.backends`) and the pass execution layout
(:data:`repro.models.propagation.PASS_LAYOUTS`).  This module sweeps
the full product: compiled-vs-reference forward/gradient equivalence
plus a finite-difference spot check of the end-to-end autograd.
"""

import numpy as np
import pytest

from repro.datagen.generators import parity, ripple_adder
from repro.graphdata import from_aig, prepare
from repro.models import DeepGate
from repro.models.propagation import PASS_LAYOUTS, use_pass_layout
from repro.nn import Tensor, no_grad
from repro.nn.backends import available_backends, use_backend
from repro.synth import synthesize

MATRIX = [
    (backend, layout)
    for backend in available_backends()
    for layout in PASS_LAYOUTS
]
MATRIX_IDS = [f"{b}-{lay}" for b, lay in MATRIX]

CONFIGS = [
    {},
    {"aggregator": "deepset", "use_skip": False},
]
CONFIG_IDS = ["attention-skip", "deepset"]


def make_batch():
    g1 = from_aig(synthesize(ripple_adder(4)), num_patterns=256, seed=0)
    g2 = from_aig(synthesize(parity(5)), num_patterns=256, seed=1)
    return prepare([g1, g2])


def make_pair(**kwargs):
    defaults = dict(dim=8, num_iterations=2)
    defaults.update(kwargs)
    ref = DeepGate(rng=np.random.default_rng(0), compiled=False, **defaults)
    fast = DeepGate(rng=np.random.default_rng(0), compiled=True, **defaults)
    return ref, fast


@pytest.mark.parametrize("backend,layout", MATRIX, ids=MATRIX_IDS)
@pytest.mark.parametrize("config", CONFIGS, ids=CONFIG_IDS)
class TestEquivalenceMatrix:
    def test_forward_matches(self, backend, layout, config):
        batch = make_batch()
        ref, fast = make_pair(**config)
        with no_grad():
            expected = ref(batch).data
        with use_backend(backend), use_pass_layout(layout), no_grad():
            actual = fast(batch).data
        np.testing.assert_allclose(actual, expected, rtol=1e-5, atol=1e-6)

    def test_gradients_match(self, backend, layout, config):
        batch = make_batch()
        ref, fast = make_pair(**config)
        # smooth loss: L1's kink would amplify round-off into mismatches
        weights = Tensor(
            np.linspace(-1.0, 1.0, batch.num_nodes).astype(np.float32)
        )
        (ref(batch) * weights).sum().backward()
        with use_backend(backend), use_pass_layout(layout):
            (fast(batch) * weights).sum().backward()
        for (name, p_ref), (_, p_fast) in zip(
            ref.named_parameters(), fast.named_parameters()
        ):
            assert p_ref.grad is not None and p_fast.grad is not None, name
            np.testing.assert_allclose(
                p_ref.grad, p_fast.grad, rtol=2e-4, atol=2e-5,
                err_msg=f"gradient mismatch for {name} "
                        f"({backend}/{layout})",
            )


@pytest.mark.parametrize("backend,layout", MATRIX, ids=MATRIX_IDS)
class TestFiniteDifferenceMatrix:
    """FD spot check of the whole compiled stack per backend × layout."""

    def test_parameter_gradients(self, backend, layout):
        g = from_aig(
            synthesize(ripple_adder(3)), num_patterns=128, seed=0
        )
        batch = prepare([g])
        model = DeepGate(
            dim=6, num_iterations=2, rng=np.random.default_rng(0),
            compiled=True,
        )
        weights = Tensor(
            np.linspace(0.2, 1.0, batch.num_nodes).astype(np.float32)
        )

        def loss_value() -> float:
            with no_grad():
                return float((model(batch).data * weights.data).sum())

        with use_backend(backend), use_pass_layout(layout):
            model.zero_grad()
            (model(batch) * weights).sum().backward()
            rng = np.random.default_rng(7)
            # the model's sigmoid chain has real curvature: a 1e-2 step
            # (fine for single kernels) leaves visible truncation error,
            # while the loss is ~16 so float32 round-off is still far
            # below a 2e-3 step's secant
            eps = 2e-3
            for name, p in model.named_parameters():
                assert p.grad is not None, name
                flat = p.data.reshape(-1)
                gflat = np.asarray(p.grad).reshape(-1)
                idx = int(rng.integers(flat.size))
                orig = flat[idx]
                flat[idx] = orig + eps
                fp = loss_value()
                flat[idx] = orig - eps
                fm = loss_value()
                flat[idx] = orig
                numeric = (fp - fm) / (2.0 * eps)
                np.testing.assert_allclose(
                    gflat[idx], numeric, atol=2e-2, rtol=8e-2,
                    err_msg=f"FD mismatch for {name}[{idx}] "
                            f"({backend}/{layout})",
                )
