"""Tests for the DeepGate model and its configuration space."""

import numpy as np
import pytest

from repro.datagen.generators import ripple_adder
from repro.graphdata import from_aig, prepare
from repro.models import DeepGate
from repro.nn import Tensor, no_grad
from repro.synth import synthesize


def make_batch(width=4, seed=0):
    g = from_aig(synthesize(ripple_adder(width)), num_patterns=512, seed=seed)
    return prepare([g])


def make_model(**kwargs):
    defaults = dict(dim=8, num_iterations=2, rng=np.random.default_rng(0))
    defaults.update(kwargs)
    return DeepGate(**defaults)


class TestForward:
    def test_output_shape_and_range(self):
        batch = make_batch()
        model = make_model()
        with no_grad():
            pred = model(batch)
        assert pred.shape == (batch.num_nodes,)
        assert (pred.data > 0).all() and (pred.data < 1).all()

    def test_deterministic(self):
        batch = make_batch()
        model = make_model()
        with no_grad():
            a = model(batch).data
            b = model(batch).data
        np.testing.assert_array_equal(a, b)

    def test_embeddings_shape(self):
        batch = make_batch()
        model = make_model(dim=16)
        with no_grad():
            emb = model.embeddings(batch)
        assert emb.shape == (batch.num_nodes, 16)

    def test_iterations_change_predictions(self):
        batch = make_batch()
        model = make_model(num_iterations=5)
        with no_grad():
            t1 = model(batch, num_iterations=1).data
            t5 = model(batch, num_iterations=5).data
        assert not np.allclose(t1, t5)

    def test_skip_connections_change_predictions(self):
        batch = make_batch()
        with_sc = make_model(use_skip=True)
        without = make_model(use_skip=False)
        without.load_state_dict(
            {
                k: v
                for k, v in with_sc.state_dict().items()
                if "w_edge" not in k
            }
        )
        with no_grad():
            a = with_sc(batch).data
            b = without(batch).data
        assert len(batch.graph.skip_edges) > 0
        assert not np.allclose(a, b)

    def test_reverse_layer_toggle(self):
        batch = make_batch()
        fwd_only = make_model(use_reverse=False, use_skip=False)
        with no_grad():
            pred = fwd_only(batch).data
        assert pred.shape == (batch.num_nodes,)
        # reverse-layer parameters must not exist
        names = [n for n, _ in fwd_only.named_parameters()]
        assert not any("rev_" in n for n in names)

    def test_init_only_mode_uses_embedding(self):
        model = make_model(input_mode="init_only", use_skip=False)
        names = [n for n, _ in model.named_parameters()]
        assert any(n.startswith("embed") for n in names)
        batch = make_batch()
        with no_grad():
            assert model(batch).shape == (batch.num_nodes,)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError, match="input_mode"):
            make_model(input_mode="bogus")
        with pytest.raises(ValueError, match="attention"):
            make_model(aggregator="deepset", use_skip=True)


class TestGradients:
    def test_all_parameters_receive_gradients(self):
        from repro.nn import l1_loss

        batch = make_batch()
        model = make_model()
        pred = model(batch)
        loss = l1_loss(pred, batch.labels)
        loss.backward()
        missing = [
            n
            for n, p in model.named_parameters()
            if p.grad is None or not np.isfinite(p.grad).all()
        ]
        assert not missing, f"no/invalid gradient for {missing}"

    def test_training_step_reduces_loss(self):
        from repro.nn import Adam, l1_loss

        batch = make_batch()
        model = make_model(dim=16, num_iterations=3)
        opt = Adam(model.parameters(), lr=5e-3)
        first = None
        for _ in range(15):
            opt.zero_grad()
            loss = l1_loss(model(batch), batch.labels)
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        final = l1_loss(model(batch), batch.labels).item()
        assert final < first


class TestCompiledEquivalence:
    """The fast path must match the reference propagation loop exactly
    (forward) and to float32 round-off (gradients)."""

    CONFIGS = [
        {},
        {"use_skip": False},
        {"use_reverse": False},
        {"input_mode": "init_only", "use_skip": False},
        {"aggregator": "conv_sum", "use_skip": False},
        {"aggregator": "deepset", "use_skip": False},
        {"aggregator": "gated_sum", "use_skip": False},
        {"aggregator": "gated_sum", "use_skip": False,
         "input_mode": "init_only"},
        {"aggregator": "deepset", "use_skip": False, "use_reverse": False},
    ]

    def _pair(self, **kwargs):
        ref = make_model(rng=np.random.default_rng(0), compiled=False, **kwargs)
        fast = make_model(rng=np.random.default_rng(0), compiled=True, **kwargs)
        return ref, fast

    @pytest.mark.parametrize(
        "config", CONFIGS, ids=[str(sorted(c.items())) for c in CONFIGS]
    )
    def test_forward_matches(self, config):
        batch = make_batch(width=5)
        ref, fast = self._pair(**config)
        with no_grad():
            a, b = ref(batch).data, fast(batch).data
        np.testing.assert_allclose(a, b, rtol=1e-5, atol=1e-6)

    @pytest.mark.parametrize(
        "config", CONFIGS, ids=[str(sorted(c.items())) for c in CONFIGS]
    )
    def test_gradients_match(self, config):
        batch = make_batch(width=5)
        ref, fast = self._pair(**config)
        # a smooth loss: L1's sign kink would amplify float32 round-off
        # differences into spurious gradient mismatches
        weights = np.linspace(-1.0, 1.0, batch.num_nodes).astype(np.float32)
        for model in (ref, fast):
            (model(batch) * Tensor(weights)).sum().backward()
        for (name, p_ref), (_, p_fast) in zip(
            ref.named_parameters(), fast.named_parameters()
        ):
            assert p_ref.grad is not None and p_fast.grad is not None, name
            np.testing.assert_allclose(
                p_ref.grad, p_fast.grad, rtol=2e-4, atol=2e-5,
                err_msg=f"gradient mismatch for {name}",
            )

    def test_compiled_is_default(self):
        assert make_model().compiled

    def test_multi_circuit_batch(self):
        from repro.datagen.generators import parity

        g1 = from_aig(synthesize(ripple_adder(4)), num_patterns=256, seed=0)
        g2 = from_aig(synthesize(parity(6)), num_patterns=256, seed=1)
        batch = prepare([g1, g2])
        ref, fast = self._pair()
        with no_grad():
            np.testing.assert_allclose(
                ref(batch).data, fast(batch).data, rtol=1e-5, atol=1e-6
            )


class TestStatePersistence:
    def test_save_load_same_predictions(self, tmp_path):
        from repro.nn import load_module, save_module

        batch = make_batch()
        m1 = make_model(rng=np.random.default_rng(4))
        m2 = make_model(rng=np.random.default_rng(9))
        path = tmp_path / "dg.npz"
        save_module(m1, path)
        load_module(m2, path)  # includes the h_init buffer
        with no_grad():
            np.testing.assert_allclose(
                m1(batch).data, m2(batch).data, atol=1e-6
            )
