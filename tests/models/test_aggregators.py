"""Tests for the four aggregator designs."""

import numpy as np
import pytest

from repro.models import (
    AGGREGATOR_NAMES,
    AttentionAggregator,
    ConvSumAggregator,
    DeepSetAggregator,
    GatedSumAggregator,
    build_aggregator,
)
from repro.nn import Tensor
from repro.nn.kernels import SegmentLayout


def rng():
    return np.random.default_rng(0)


def toy_inputs(num_edges=5, num_targets=3, dim=4):
    r = np.random.default_rng(1)
    h_src = Tensor(r.normal(size=(num_edges, dim)).astype(np.float32))
    query = Tensor(r.normal(size=(num_targets, dim)).astype(np.float32))
    seg = np.array([0, 0, 1, 2, 2])
    return h_src, query, seg


class TestFactory:
    @pytest.mark.parametrize("name", AGGREGATOR_NAMES)
    def test_builds_all(self, name):
        agg = build_aggregator(name, 8, rng())
        h_src, query, seg = toy_inputs(dim=8)
        out = agg(h_src, query, seg, 3)
        assert out.shape == (3, 8)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown aggregator"):
            build_aggregator("magic", 8, rng())


class TestConvSum:
    def test_equals_manual_linear_sum(self):
        agg = ConvSumAggregator(4, rng())
        h_src, query, seg = toy_inputs()
        out = agg(h_src, query, seg, 3).data
        lin = h_src.data @ agg.linear.weight.data + agg.linear.bias.data
        expect = np.zeros((3, 4), dtype=np.float32)
        np.add.at(expect, seg, lin)
        np.testing.assert_allclose(out, expect, atol=1e-6)


class TestDeepSet:
    def test_permutation_invariant(self):
        agg = DeepSetAggregator(4, rng())
        h_src, query, _ = toy_inputs()
        seg = np.zeros(5, dtype=int)
        out1 = agg(h_src, query, seg, 1).data
        perm = np.array([4, 2, 0, 1, 3])
        h_perm = Tensor(h_src.data[perm])
        out2 = agg(h_perm, query, seg, 1).data
        np.testing.assert_allclose(out1, out2, atol=1e-5)


class TestGatedSum:
    def test_gates_bound_message(self):
        agg = GatedSumAggregator(4, rng())
        h_src, query, seg = toy_inputs()
        out = agg(h_src, query, seg, 3).data
        # message magnitude bounded by sum of |value| rows (gates in (0,1))
        values = np.abs(
            h_src.data @ agg.value.weight.data + agg.value.bias.data
        )
        bound = np.zeros((3, 4), dtype=np.float32)
        np.add.at(bound, seg, values)
        assert (np.abs(out) <= bound + 1e-5).all()


class TestAttention:
    def test_single_predecessor_passes_state_through(self):
        """With one predecessor, softmax weight is 1: message == h_u."""
        agg = AttentionAggregator(4, rng())
        h_src = Tensor(np.arange(4, dtype=np.float32).reshape(1, 4))
        query = Tensor(np.ones((1, 4), dtype=np.float32))
        out = agg(h_src, query, np.array([0]), 1).data
        np.testing.assert_allclose(out[0], h_src.data[0], atol=1e-6)

    def test_weights_sum_to_one(self):
        """Message is a convex combination of the source states."""
        agg = AttentionAggregator(3, rng())
        const = np.ones((4, 3), dtype=np.float32) * 2.5
        out = agg(
            Tensor(const),
            Tensor(np.zeros((2, 3), np.float32)),
            np.array([0, 0, 1, 1]),
            2,
        ).data
        np.testing.assert_allclose(out, 2.5, atol=1e-5)

    def test_edge_attr_changes_scores(self):
        agg = AttentionAggregator(4, rng(), edge_attr_dim=6)
        # w_edge starts at zero except the skip-indicator entry; give it
        # weight so generic attributes influence the scores
        agg.w_edge.weight.data[:] = np.linspace(-1, 1, 6).reshape(6, 1)
        h_src, query, seg = toy_inputs()
        base = agg(h_src, query, seg, 3, Tensor(np.zeros((5, 6), np.float32))).data
        attr = np.random.default_rng(3).normal(size=(5, 6)).astype(np.float32) * 3
        out = agg(h_src, query, seg, 3, Tensor(attr)).data
        assert not np.allclose(base, out)

    def test_skip_indicator_initially_mutes_skip_edges(self):
        """A fresh aggregator down-weights edges flagged as skip."""
        agg = AttentionAggregator(4, rng(), edge_attr_dim=6)
        agg.w_key.weight.data[:] = 0.0  # isolate the indicator's effect
        h_src = Tensor(np.ones((2, 4), np.float32))
        h_src.data[1] = 5.0  # the skip source carries a distinct state
        query = Tensor(np.zeros((1, 4), np.float32))
        seg = np.array([0, 0])
        attr = np.zeros((2, 6), np.float32)
        attr[1, -1] = 1.0  # second edge is a skip connection
        out = agg(h_src, query, seg, 1, Tensor(attr)).data
        # message leans strongly toward the normal edge's state (1.0)
        alpha_skip = (out[0, 0] - 1.0) / 4.0
        assert alpha_skip < 0.2

    def test_edge_attr_without_capacity_rejected(self):
        agg = AttentionAggregator(4, rng())
        h_src, query, seg = toy_inputs()
        with pytest.raises(ValueError, match="edge_attr_dim"):
            agg(h_src, query, seg, 3, Tensor(np.zeros((5, 6), np.float32)))

    def test_edge_attr_without_capacity_rejected_on_fused_path(self):
        # the compiled (layout) dispatch must hit the same guard, not
        # silently drop the attributes
        agg = AttentionAggregator(4, rng())
        h_src, query, seg = toy_inputs()
        with pytest.raises(ValueError, match="edge_attr_dim"):
            agg(h_src, query, seg, 3,
                Tensor(np.zeros((5, 6), np.float32)),
                layout=SegmentLayout(seg, 3))

    def test_edge_attr_width_mismatch_rejected(self):
        agg = AttentionAggregator(4, rng(), edge_attr_dim=6)
        h_src, query, seg = toy_inputs()
        with pytest.raises(ValueError, match="columns"):
            agg(h_src, query, seg, 3, Tensor(np.zeros((5, 4), np.float32)))

    def test_query_affects_weights(self):
        agg = AttentionAggregator(4, rng())
        h_src, _, seg = toy_inputs()
        q1 = Tensor(np.zeros((3, 4), np.float32))
        q2 = Tensor(np.ones((3, 4), np.float32) * 4)
        out1 = agg(h_src, q1, seg, 3).data
        out2 = agg(h_src, q2, seg, 3).data
        # w1^T h_v shifts all scores of a segment equally -> softmax is
        # invariant to the query in the *additive single-head* design
        np.testing.assert_allclose(out1, out2, atol=1e-5)

class TestFusedDispatch:
    """With a precomputed layout every aggregator runs as ONE fused
    autograd node; it must match the composite reference path in values
    and in every gradient."""

    @pytest.mark.parametrize("name", AGGREGATOR_NAMES)
    def test_layout_path_matches_reference(self, name):
        agg = build_aggregator(name, 4, rng())
        h_src_np = np.random.default_rng(7).normal(size=(5, 4)).astype(
            np.float32
        )
        _, query, seg = toy_inputs()
        w = np.linspace(-1, 1, 12).reshape(3, 4).astype(np.float32)
        results = {}
        for layout in (None, SegmentLayout(seg, 3)):
            h_src = Tensor(h_src_np, requires_grad=True)
            agg.zero_grad()
            out = agg(h_src, query, seg, 3, layout=layout)
            (out * Tensor(w)).sum().backward()
            results["fused" if layout is not None else "ref"] = (
                out.data,
                h_src.grad,
                [p.grad for p in agg.parameters()],
            )
        out_ref, dh_ref, dp_ref = results["ref"]
        out_fused, dh_fused, dp_fused = results["fused"]
        np.testing.assert_allclose(out_fused, out_ref, rtol=1e-5, atol=1e-6)
        np.testing.assert_allclose(dh_fused, dh_ref, rtol=1e-4, atol=1e-6)
        for g_ref, g_fused in zip(dp_ref, dp_fused):
            if g_ref is None:
                assert g_fused is None or not np.abs(g_fused).max()
                continue
            np.testing.assert_allclose(g_fused, g_ref, rtol=1e-4, atol=1e-6)

    def test_attention_layout_path_with_edge_attr(self):
        agg = AttentionAggregator(4, rng(), edge_attr_dim=3)
        agg.w_edge.weight.data[:] = np.linspace(-1, 1, 3).reshape(3, 1)
        h_src_np = np.random.default_rng(8).normal(size=(5, 4)).astype(
            np.float32
        )
        _, query, seg = toy_inputs()
        attr = np.random.default_rng(9).normal(size=(5, 3)).astype(np.float32)
        w = np.linspace(-1, 1, 12).reshape(3, 4).astype(np.float32)
        results = {}
        for key, layout in (("ref", None), ("fused", SegmentLayout(seg, 3))):
            h_src = Tensor(h_src_np, requires_grad=True)
            agg.zero_grad()
            out = agg(h_src, query, seg, 3, Tensor(attr), layout=layout)
            (out * Tensor(w)).sum().backward()
            results[key] = (out.data, h_src.grad, agg.w_edge.weight.grad)
        np.testing.assert_allclose(
            results["fused"][0], results["ref"][0], rtol=1e-5, atol=1e-6
        )
        np.testing.assert_allclose(
            results["fused"][1], results["ref"][1], rtol=1e-4, atol=1e-6
        )
        np.testing.assert_allclose(
            results["fused"][2], results["ref"][2], rtol=1e-4, atol=1e-6
        )

    @pytest.mark.parametrize("name", AGGREGATOR_NAMES)
    def test_gradients_reach_parameters(self, name):
        agg = build_aggregator(name, 4, rng())
        h_src, query, seg = toy_inputs()
        h_src.requires_grad = True
        out = agg(h_src, query, seg, 3)
        (out * out).sum().backward()
        assert h_src.grad is not None
        grads = [p.grad is not None for p in agg.parameters()]
        if name == "attention":
            # w_query receives zero-gradient only through softmax symmetry;
            # it still must be reachable (non-None) via the graph
            assert any(grads)
        else:
            assert all(grads)
