"""Tests for SCOAP controllability/observability."""

import numpy as np

from repro.aig import AIGBuilder, lit_negate
from repro.datagen.generators import ripple_adder
from repro.synth import synthesize
from repro.testability import compute_scoap
from repro.testability.scoap import INFINITY


def and2_graph():
    b = AIGBuilder(num_pis=2)
    b.add_output(b.add_and(b.pi_lit(0), b.pi_lit(1)))
    return b.build().to_gate_graph()


def not_graph():
    b = AIGBuilder(num_pis=1)
    b.add_output(lit_negate(b.pi_lit(0)))
    return b.build().to_gate_graph()


class TestControllability:
    def test_pi_values(self):
        m = compute_scoap(and2_graph())
        assert m.cc0[0] == 1 and m.cc1[0] == 1  # PIs cost 1

    def test_and_gate(self):
        m = compute_scoap(and2_graph())
        out = 2  # nodes: PI, PI, AND
        assert m.cc1[out] == 1 + 1 + 1  # both inputs to 1, plus the gate
        assert m.cc0[out] == 1 + 1  # cheapest input to 0, plus the gate

    def test_not_gate_swaps(self):
        m = compute_scoap(not_graph())
        assert m.cc1[1] == m.cc0[0] + 1
        assert m.cc0[1] == m.cc1[0] + 1

    def test_deep_chain_grows(self):
        """CC1 of an AND chain grows linearly with depth."""
        b = AIGBuilder(num_pis=5)
        lit = b.pi_lit(0)
        for k in range(1, 5):
            lit = b.add_and(lit, b.pi_lit(k))
        b.add_output(lit)
        m = compute_scoap(b.build().to_gate_graph())
        cc1_chain = m.cc1[np.array([5, 6, 7, 8])]  # the AND nodes
        assert (np.diff(cc1_chain) > 0).all()


class TestObservability:
    def test_output_is_zero(self):
        g = and2_graph()
        m = compute_scoap(g)
        assert m.co[int(g.outputs[0])] == 0

    def test_and_input_needs_side_one(self):
        m = compute_scoap(and2_graph())
        # observing PI 0 requires PI 1 at 1 (CC1=1) plus the gate
        assert m.co[0] == 0 + 1 + 1

    def test_unobservable_node(self):
        b = AIGBuilder(num_pis=2)
        b.add_and(b.pi_lit(0), b.pi_lit(1))  # dangling AND
        b.add_output(b.pi_lit(0))
        m = compute_scoap(b.build().to_gate_graph())
        assert m.co[-1] >= INFINITY

    def test_multi_fanout_takes_minimum(self):
        b = AIGBuilder(num_pis=3)
        shared = b.add_and(b.pi_lit(0), b.pi_lit(1))
        deep = b.add_and(shared, b.pi_lit(2))
        b.add_output(shared)  # direct observation: CO = 0
        b.add_output(deep)
        g = b.build().to_gate_graph()
        m = compute_scoap(g)
        shared_node = int(g.outputs[0])
        assert m.co[shared_node] == 0  # the cheap branch wins


class TestTestabilityScore:
    def test_chain_monotonicity(self):
        """Along an AND chain, CC1 grows and CO shrinks toward the output."""
        b = AIGBuilder(num_pis=6)
        lit = b.pi_lit(0)
        chain = []
        for k in range(1, 6):
            lit = b.add_and(lit, b.pi_lit(k))
            chain.append(lit >> 1)
        b.add_output(lit)
        g = b.build().to_gate_graph()
        m = compute_scoap(g)
        # gate-graph node ids of the chain ANDs are 6..10 (after 6 PIs)
        and_nodes = np.nonzero(g.node_type == 1)[0]
        cc1 = m.cc1[and_nodes]
        co = m.co[and_nodes]
        assert (np.diff(cc1) > 0).all()
        assert (np.diff(co) < 0).all()
        assert co[-1] == 0  # the output AND is directly observable

    def test_scores_finite_for_observable_nodes(self):
        g = synthesize(ripple_adder(8)).to_gate_graph()
        m = compute_scoap(g)
        assert (m.testability() < INFINITY).all()

    def test_shapes(self):
        g = and2_graph()
        m = compute_scoap(g)
        assert m.num_nodes == g.num_nodes
        assert m.testability().shape == (g.num_nodes,)
