"""Tests for stuck-at fault simulation."""


import numpy as np
import pytest

from repro.aig import AIGBuilder
from repro.datagen.generators import parity, ripple_adder
from repro.sim import exhaustive_patterns
from repro.synth import synthesize
from repro.testability import (
    StuckAtFault,
    detection_probabilities,
    enumerate_faults,
    run_fault_simulation,
    simulate_fault,
)


def and2_graph():
    b = AIGBuilder(num_pis=2)
    b.add_output(b.add_and(b.pi_lit(0), b.pi_lit(1)))
    return b.build().to_gate_graph()


class TestFaultModel:
    def test_enumeration_two_per_node(self):
        g = and2_graph()
        faults = enumerate_faults(g)
        assert len(faults) == 2 * g.num_nodes
        assert len(set(faults)) == len(faults)

    def test_invalid_stuck_value(self):
        with pytest.raises(ValueError):
            StuckAtFault(0, 2)


class TestSimulateFault:
    def test_and_output_sa0(self):
        """AND out sa0 detected exactly by the pattern a=b=1."""
        g = and2_graph()
        pats = exhaustive_patterns(2)
        flags = simulate_fault(g, StuckAtFault(2, 0), pats)
        assert int(flags[0]) & 0xF == 0b1000

    def test_and_output_sa1(self):
        """AND out sa1 detected by the three patterns where out is 0."""
        g = and2_graph()
        pats = exhaustive_patterns(2)
        flags = simulate_fault(g, StuckAtFault(2, 1), pats)
        assert int(flags[0]) & 0xF == 0b0111

    def test_pi_fault(self):
        """PI a sa0: detected when a=1 and b=1 (the only propagating case)."""
        g = and2_graph()
        pats = exhaustive_patterns(2)
        flags = simulate_fault(g, StuckAtFault(0, 0), pats)
        assert int(flags[0]) & 0xF == 0b1000

    def test_matches_bruteforce_on_random_circuit(self):
        """Detection flags equal naive per-pattern double simulation."""
        g = synthesize(ripple_adder(3)).to_gate_graph()
        pats = exhaustive_patterns(g.num_pis)
        total = 1 << g.num_pis
        from repro.sim import simulate_gate_graph

        good = simulate_gate_graph(g, pats)
        rng = np.random.default_rng(0)
        for _ in range(6):
            node = int(rng.integers(0, g.num_nodes))
            sa = int(rng.integers(0, 2))
            flags = simulate_fault(g, StuckAtFault(node, sa), pats, good)
            word = int(flags[0]) if flags.shape[0] == 1 else None
            for p in range(min(total, 64)):
                got = bool((int(flags[p // 64]) >> (p % 64)) & 1)
                expect = _detects(g, good, node, sa, pats, p)
                assert got == expect, (node, sa, p)


def _detects(graph, good, node, sa, pats, pattern):
    """Naive single-pattern fault simulation for cross-checking."""
    fanins = graph.fanin_lists()
    values = {}
    for v in range(graph.num_nodes):
        t = int(graph.node_type[v])
        if v == node:
            values[v] = bool(sa)
            continue
        if t == 0:  # PI
            pi_index = int(np.nonzero(np.nonzero(graph.node_type == 0)[0] == v)[0][0])
            values[v] = bool((int(pats[pi_index, pattern // 64]) >> (pattern % 64)) & 1)
        elif t == 1:  # AND
            a, b = fanins[v]
            values[v] = values[a] and values[b]
        else:  # NOT
            values[v] = not values[fanins[v][0]]
    for o in graph.outputs:
        good_bit = bool((int(good[int(o), pattern // 64]) >> (pattern % 64)) & 1)
        if values[int(o)] != good_bit:
            return True
    return False


class TestFaultSimulationReport:
    def test_full_coverage_on_parity(self):
        """Exhaustive patterns detect every fault of a parity tree."""
        g = synthesize(parity(4)).to_gate_graph()
        # 16 exhaustive patterns: run with enough random patterns instead
        report = run_fault_simulation(g, num_patterns=4096, seed=0)
        assert report.coverage == 1.0
        assert not report.undetected()

    def test_coverage_grows_with_patterns(self):
        g = synthesize(ripple_adder(6)).to_gate_graph()
        low = run_fault_simulation(g, num_patterns=64, seed=3).coverage
        high = run_fault_simulation(g, num_patterns=8192, seed=3).coverage
        assert high >= low

    def test_detection_probability_range(self):
        g = and2_graph()
        probs = detection_probabilities(g, num_patterns=4096, seed=1)
        assert len(probs) == 2 * g.num_nodes
        for p in probs.values():
            assert 0.0 <= p <= 1.0
        # AND output sa0 has detection probability ~ 1/4
        assert probs[StuckAtFault(2, 0)] == pytest.approx(0.25, abs=0.05)

    def test_custom_fault_list(self):
        g = and2_graph()
        report = run_fault_simulation(
            g, num_patterns=256, seed=0, faults=[StuckAtFault(2, 0)]
        )
        assert len(report.faults) == 1
