"""Ground-truth cross-checks between the label oracles.

The new registered workloads lean on three oracles — SCOAP, the
stuck-at fault simulator and the signal-probability estimators.  These
tests tie them to each other *exhaustively* on tiny circuits, so every
pattern is enumerated and the invariants are exact, not statistical:

* a node SCOAP calls unobservable (``CO == INFINITY``) has zero
  detection probability for both of its faults;
* a fault's exhaustive detection probability is bounded by the node's
  exact excitation probability (sa0 needs the node at 1, sa1 at 0);
* the per-node ``hard_to_test_score`` premise: the harder fault of each
  node is bounded by ``min(p, 1-p)``;
* SCOAP's testability ranking anti-correlates with measured
  detectability;
* Monte-Carlo labels converge to the exhaustive enumeration the
  ``exact_below_pis`` path uses.
"""

import numpy as np
import pytest

from repro.datagen import generators as gen
from repro.experiments.common import spearman
from repro.sim.bitparallel import (
    exhaustive_patterns,
    popcount,
    simulate_gate_graph,
)
from repro.sim.probability import (
    exact_probabilities,
    gate_graph_probabilities,
    monte_carlo_probabilities,
)
from repro.synth import netlist_to_aig, synthesize
from repro.testability.faults import StuckAtFault, simulate_fault
from repro.testability.scoap import INFINITY, compute_scoap

#: tiny circuits spanning both structural regimes (arithmetic chains,
#: control fanout); all exhaustively enumerable
DESIGNS = {
    "adder": lambda: gen.ripple_adder(3),
    "mux_tree": lambda: gen.mux_tree(2),
    "arbiter": lambda: gen.priority_arbiter(5),
    "comparator": lambda: gen.comparator(3),
}


@pytest.fixture(scope="module", params=sorted(DESIGNS))
def oracle_data(request):
    """One design's gate graph + exhaustive detection and probability."""
    graph = synthesize(DESIGNS[request.param]()).to_gate_graph()
    assert graph.num_pis <= 12

    pats = exhaustive_patterns(graph.num_pis)
    good = simulate_gate_graph(graph, pats)
    total = 1 << graph.num_pis
    mask = np.uint64((1 << total) - 1) if total < 64 else None

    def detection(fault):
        flags = simulate_fault(graph, fault, pats, good_values=good)
        if mask is not None:
            flags = flags & mask
        return int(popcount(flags.reshape(1, -1))[0]) / total

    det_sa0 = np.array(
        [detection(StuckAtFault(v, 0)) for v in range(graph.num_nodes)]
    )
    det_sa1 = np.array(
        [detection(StuckAtFault(v, 1)) for v in range(graph.num_nodes)]
    )
    exact = gate_graph_probabilities(graph, exact_below_pis=16)
    return graph, det_sa0, det_sa1, exact


class TestScoapVsExhaustiveFaultSim:
    def test_unobservable_nodes_are_undetectable(self, oracle_data):
        graph, det_sa0, det_sa1, _ = oracle_data
        scoap = compute_scoap(graph)
        unobservable = scoap.co >= INFINITY
        assert np.all(det_sa0[unobservable] == 0.0)
        assert np.all(det_sa1[unobservable] == 0.0)

    def test_testability_anti_correlates_with_detectability(
        self, oracle_data
    ):
        # SCOAP is a heuristic, so no exact bound — but on these tiny
        # circuits a *positive* rank correlation between "hard to test"
        # and "easily detected" would mean the oracle is broken
        graph, det_sa0, det_sa1, _ = oracle_data
        scoap = compute_scoap(graph)
        observable = scoap.co < INFINITY
        hardness = scoap.testability().astype(float)[observable]
        detect = np.minimum(det_sa0, det_sa1)[observable]
        assert spearman(hardness, detect) < 0.0


class TestFaultSimVsExactProbability:
    def test_sa0_detection_bounded_by_excitation(self, oracle_data):
        # detecting stuck-at-0 requires driving the node to 1 first, so
        # the detection probability can never exceed P(node = 1)
        _, det_sa0, _, exact = oracle_data
        assert np.all(det_sa0 <= exact + 1e-12)

    def test_sa1_detection_bounded_by_excitation(self, oracle_data):
        _, _, det_sa1, exact = oracle_data
        assert np.all(det_sa1 <= (1.0 - exact) + 1e-12)

    def test_hard_to_test_premise(self, oracle_data):
        # the testability_analysis experiment ranks nodes by
        # 0.5 - min(p, 1-p); the exhaustive ground truth behind it: the
        # harder fault of every node is bounded by min(p, 1-p)
        _, det_sa0, det_sa1, exact = oracle_data
        worst = np.minimum(det_sa0, det_sa1)
        excitable = np.minimum(exact, 1.0 - exact)
        assert np.all(worst <= excitable + 1e-12)

    def test_output_faults_detected_exactly_at_excitation(self, oracle_data):
        # at a primary output there is nothing to propagate through:
        # detection probability equals excitation probability exactly
        graph, det_sa0, det_sa1, exact = oracle_data
        for o in graph.outputs:
            v = int(o)
            assert det_sa0[v] == pytest.approx(exact[v])
            assert det_sa1[v] == pytest.approx(1.0 - exact[v])


class TestMonteCarloVsExhaustive:
    @pytest.mark.parametrize("name", sorted(DESIGNS))
    def test_sampled_labels_converge_to_exact(self, name):
        aig = netlist_to_aig(DESIGNS[name]())
        exact = exact_probabilities(aig)
        sampled = monte_carlo_probabilities(aig, num_patterns=16384, seed=7)
        assert float(np.abs(sampled - exact).max()) < 0.03

    def test_exact_below_pis_path_matches_enumeration(self):
        graph = synthesize(gen.ripple_adder(3)).to_gate_graph()
        exact = gate_graph_probabilities(graph, exact_below_pis=16)
        pats = exhaustive_patterns(graph.num_pis)
        values = simulate_gate_graph(graph, pats)
        total = 1 << graph.num_pis
        if total < 64:
            values = values & np.uint64((1 << total) - 1)
        direct = popcount(values) / float(total)
        assert np.array_equal(exact, direct)
