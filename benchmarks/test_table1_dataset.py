"""Benchmark regenerating Table I: dataset construction statistics."""

from repro.experiments import table1
from repro.datagen.suites import SUITE_NAMES


def test_table1_dataset_statistics(once):
    rows = once(table1.run, "smoke")
    print()
    print(table1.format_table(rows))

    assert [r.suite for r in rows] == list(SUITE_NAMES)
    for row in rows:
        # the reproduction keeps the paper's size window
        assert row.node_range[0] >= 30
        assert row.node_range[1] <= 3000
        assert row.subcircuits > 0
        # level ranges in the same order of magnitude as the paper's 3-24
        assert row.level_range[1] <= 80
