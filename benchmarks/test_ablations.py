"""Benchmarks for the extra design-choice ablations DESIGN.md calls out."""

from repro.experiments import ablations
from repro.experiments.common import get_scale


def test_reverse_layer_ablation(once):
    rows = once(ablations.reverse_layer_ablation, get_scale("smoke"))
    print()
    print(ablations.format_table(rows))
    errors = {r.variant: r.error for r in rows}
    assert set(errors) == {"forward+reverse", "forward only"}
    for e in errors.values():
        assert 0.0 <= e <= 0.6


def test_input_mode_ablation(once):
    rows = once(ablations.input_mode_ablation, get_scale("smoke"))
    print()
    print(ablations.format_table(rows))
    assert {r.variant for r in rows} == {"fixed x_v input", "x_v as h0 only"}


def test_attention_on_reconvergence(once):
    rows = once(ablations.attention_on_reconvergence_ablation, get_scale("smoke"))
    print()
    print(ablations.format_table(rows))
    assert len(rows) == 3


def test_cop_baseline(once):
    rows = once(ablations.cop_baseline, get_scale("smoke"))
    print()
    print(ablations.format_table(rows))
    errors = {r.variant: r.error for r in rows}
    # COP ignores reconvergence; a trained DeepGate should not be
    # dramatically worse even at smoke scale, and both are bounded
    assert errors["COP (no learning)"] > 0.0
    assert errors["DeepGate"] <= 0.6
