"""Micro-benchmarks for the substrates: synthesis, simulation, analysis,
model inference.  These use repeated rounds (they are cheap and stable)
and guard the throughput that makes the paper-scale experiments feasible.
"""

import numpy as np
import pytest

from repro.datagen import generators as gen
from repro.graphdata import from_aig, prepare
from repro.models import DeepGate
from repro.nn import no_grad
from repro.sim import (
    find_reconvergences,
    monte_carlo_probabilities,
    random_patterns,
    simulate_aig,
)
from repro.synth import synthesize


@pytest.fixture(scope="module")
def multiplier_aig():
    return synthesize(gen.multiplier(8))


@pytest.fixture(scope="module")
def adder_batch():
    graphs = [
        from_aig(synthesize(gen.ripple_adder(8)), num_patterns=1024, seed=0),
        from_aig(synthesize(gen.comparator(8)), num_patterns=1024, seed=1),
    ]
    return prepare(graphs)


def test_synthesize_multiplier(benchmark):
    aig = benchmark(synthesize, gen.multiplier(6))
    assert aig.num_ands > 50


def test_bitparallel_simulation_throughput(benchmark, multiplier_aig):
    """64k patterns through an 8x8 multiplier per round."""
    patterns = random_patterns(
        multiplier_aig.num_pis, 65_536, np.random.default_rng(0)
    )
    values = benchmark(simulate_aig, multiplier_aig, patterns)
    assert values.shape[0] == multiplier_aig.num_vars


def test_probability_estimation(benchmark, multiplier_aig):
    probs = benchmark(
        monte_carlo_probabilities, multiplier_aig, 16_384, 0
    )
    assert 0.0 <= probs.min() and probs.max() <= 1.0


def test_reconvergence_detection(benchmark, multiplier_aig):
    graph = multiplier_aig.to_gate_graph()
    edges = benchmark(find_reconvergences, graph)
    assert len(edges) > 0


def test_gate_graph_expansion(benchmark, multiplier_aig):
    graph = benchmark(multiplier_aig.to_gate_graph)
    assert graph.num_nodes > multiplier_aig.num_ands


def test_deepgate_inference(benchmark, adder_batch):
    model = DeepGate(dim=32, num_iterations=5, rng=np.random.default_rng(0))

    def infer():
        with no_grad():
            return model(adder_batch)

    pred = benchmark(infer)
    assert pred.shape == (adder_batch.num_nodes,)


def test_deepgate_training_step(benchmark, adder_batch):
    from repro.nn import Adam, l1_loss

    model = DeepGate(dim=32, num_iterations=3, rng=np.random.default_rng(0))
    opt = Adam(model.parameters(), lr=1e-3)

    def step():
        opt.zero_grad()
        loss = l1_loss(model(adder_batch), adder_batch.labels)
        loss.backward()
        opt.step()
        return loss.item()

    loss = benchmark(step)
    assert np.isfinite(loss)
