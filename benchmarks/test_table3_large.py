"""Benchmark regenerating Table III: generalisation to large circuits.

Shape target: models trained on small sub-circuits still predict on
designs an order of magnitude larger, and DeepGate (attention + skip
connections) beats the DeepSet DAG-RecGNN on average across the designs —
the paper reports 25-74% error reduction per design.
"""

import numpy as np

from repro.experiments import table3


def test_table3_large_circuits(once):
    rows = once(table3.run, "smoke")
    print()
    print(table3.format_table(rows))

    assert len(rows) == 5
    names = {r.design for r in rows}
    assert names == set(table3.PAPER_ROWS)
    # evaluation circuits must be larger than the smoke training window cap
    assert max(r.nodes for r in rows) > 400
    for r in rows:
        assert 0.0 <= r.deepset_error <= 0.6
        assert 0.0 <= r.deepgate_error <= 0.6
    # headline claim: DeepGate generalises better than DeepSet on average
    mean_ds = float(np.mean([r.deepset_error for r in rows]))
    mean_dg = float(np.mean([r.deepgate_error for r in rows]))
    assert mean_dg < mean_ds * 1.25  # allow smoke-scale noise


def test_large_design_construction(benchmark):
    """Micro-benchmark: synthesising + labelling the five large designs."""
    from repro.experiments.common import get_scale

    cfg = get_scale("smoke")
    ds = benchmark.pedantic(
        table3.large_designs, args=(cfg,), kwargs={"num_patterns": 1024},
        rounds=1, iterations=1,
    )
    assert len(ds) == 5
