"""Benchmark-suite configuration.

Every table/figure benchmark runs its experiment exactly once inside
``benchmark.pedantic`` (training runs are far too expensive for repeated
rounds); the substrate micro-benchmarks use normal repeated rounds.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment a single time under the benchmark clock."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _once(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _once
