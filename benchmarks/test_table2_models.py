"""Benchmark regenerating Table II: the 13-model comparison grid.

The assertion targets are the paper's *shape*, not its absolute numbers:
non-topological / non-recurrent baselines (GCN) sit in a clearly worse
error tier than the recurrent models, and DeepGate is competitive with the
best baseline.  Absolute errors differ (generated circuits, scaled-down
training budget, from-scratch substrate).
"""

import numpy as np

from repro.experiments import table2


def test_table2_model_grid(once):
    rows = once(table2.run, "smoke")
    print()
    print(table2.format_table(rows))

    errors = {r.label: r.error for r in rows}
    assert len(rows) == 13
    for err in errors.values():
        assert 0.0 <= err <= 0.6

    gcn = [e for label, e in errors.items() if label.startswith("GCN")]
    recurrent = [
        e
        for label, e in errors.items()
        if label.startswith(("DAG-RecGNN", "DeepGate"))
    ]
    # the paper's core finding: undirected GCN trails the recurrent
    # topological models (paper: 0.14-0.25 vs 0.020-0.033)
    assert min(gcn) > min(recurrent)
    assert float(np.mean(gcn)) > float(np.mean(recurrent))
