"""Benchmark regenerating the §IV-D.2 figure: error vs iterations T.

Shape target: error decreases with T, converges around the trained
iteration count (the paper trains at T=10 and sees convergence near 10),
and over-iterating well past the trained horizon does not blow the
prediction up.
"""

from repro.experiments import t_sweep


def test_figure_t_sweep(once):
    t_values = (1, 2, 3, 5, 8, 12, 20, 30)
    points = once(t_sweep.run, "smoke", t_values)
    print()
    print(t_sweep.format_table(points))

    errors = {p.num_iterations: p.error for p in points}
    assert len(points) == len(t_values)
    best = min(errors.values())
    # T=1 is the worst: one pass cannot integrate recurrent context
    assert errors[1] == max(errors.values())
    # error must drop substantially from T=1 to the trained T
    assert errors[8] < errors[1] * 0.6
    # converged tail: far beyond the trained T the error stays in the
    # same regime as the best (paper: flat from 10 to 50)
    assert errors[30] <= best + 0.03
    conv = t_sweep.convergence_iteration(points, tolerance=0.01)
    assert conv <= 12
