"""Compiled propagation fast path vs the reference level-by-level loop.

The acceptance bar for the fast path is a >= 3x training speedup on the
deep-circuit suite (the regime where the reference loop's per-level
``(N, d)`` state copies dominate).  Numerical agreement between the two
paths is always asserted; the hard speedup bar is relaxed via
``REPRO_REQUIRE_SPEEDUP=0`` on noisy shared runners.
"""

import os
import time

import numpy as np
import pytest

from repro.bench import build_suite
from repro.models import DeepGate
from repro.nn import Tensor, no_grad
from repro.nn.functional import l1_loss
from repro.nn.optim import Adam


def _model(compiled):
    return DeepGate(
        dim=64, num_iterations=4, rng=np.random.default_rng(0),
        compiled=compiled,
    )


def _train_epochs(model, batch, epochs=2):
    optimizer = Adam(model.parameters(), lr=1e-4)
    start = time.perf_counter()
    for _ in range(epochs):
        optimizer.zero_grad()
        loss = l1_loss(model(batch), batch.labels)
        loss.backward()
        optimizer.step()
    return (time.perf_counter() - start) / epochs


def test_forward_deep_compiled(once):
    batch = build_suite("deep")
    model = _model(compiled=True)

    def forward():
        with no_grad():
            return model(batch)

    pred = once(forward)
    assert pred.shape == (batch.num_nodes,)


def test_paths_agree_on_deep_suite():
    batch = build_suite("deep")
    ref, fast = _model(False), _model(True)
    with no_grad():
        np.testing.assert_allclose(
            ref(batch).data, fast(batch).data, rtol=1e-5, atol=1e-6
        )
    weights = np.linspace(-1, 1, batch.num_nodes).astype(np.float32)
    for model in (ref, fast):
        (model(batch) * Tensor(weights)).sum().backward()
    for (name, p_ref), (_, p_fast) in zip(
        ref.named_parameters(), fast.named_parameters()
    ):
        np.testing.assert_allclose(
            p_ref.grad, p_fast.grad, rtol=2e-4, atol=2e-5,
            err_msg=f"gradient mismatch for {name}",
        )


def test_deep_training_speedup():
    batch = build_suite("deep")
    t_ref = _train_epochs(_model(False), batch)
    t_fast = _train_epochs(_model(True), batch)
    speedup = t_ref / t_fast
    print(
        f"\nreference epoch {t_ref:.3f}s, compiled epoch {t_fast:.3f}s, "
        f"speedup {speedup:.2f}x"
    )
    strict = os.environ.get("REPRO_REQUIRE_SPEEDUP", "1") != "0"
    if strict:
        assert speedup >= 3.0, (
            f"expected >= 3x deep-circuit training speedup, got "
            f"{speedup:.2f}x"
        )
    else:
        pytest.skip(f"speedup bar not enforced: measured {speedup:.2f}x")
