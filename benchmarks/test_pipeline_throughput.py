"""Throughput of the sharded dataset pipeline: serial vs worker pool.

The acceptance bar for the pipeline is a >= 3x speedup over the serial
path with 4 workers on a 4-core machine.  The speedup test measures both
paths directly and also re-checks the determinism contract (parallel
output byte-identical to serial); on boxes with fewer than 4 cores the
speedup assertion is skipped but the timings are still reported.
"""

import multiprocessing
import os
import time

import pytest

from repro.datagen.pipeline import PipelineConfig, build_shards, plan_shards

# paper-scale label budget (100k patterns) on several dozen circuits:
# seconds of serial work, so process fan-out dominates pool overhead
BENCH_CONFIG = PipelineConfig(
    suites=(("EPFL", 32), ("ITC99", 32), ("IWLS", 32), ("OpenCores", 32)),
    seed=3,
    num_patterns=100_000,
    max_nodes=1500,
    max_levels=70,
    shard_size=2,
)

CORES = multiprocessing.cpu_count()


def _build(tmp_path, workers, tag):
    out = tmp_path / tag
    start = time.perf_counter()
    result = build_shards(BENCH_CONFIG, out, workers=workers)
    elapsed = time.perf_counter() - start
    assert not result.cache_hit
    assert result.total_circuits == sum(c for _, c in BENCH_CONFIG.suites)
    return result, elapsed


def test_serial_build(once, tmp_path):
    result = once(build_shards, BENCH_CONFIG, tmp_path / "serial", workers=1)
    assert result.total_circuits == 128


def test_parallel_build(once, tmp_path):
    result = once(
        build_shards,
        BENCH_CONFIG,
        tmp_path / "parallel",
        workers=min(4, max(2, CORES)),
    )
    assert result.total_circuits == 128


def test_cache_hit_is_instant(once, tmp_path):
    build_shards(BENCH_CONFIG, tmp_path / "cache", workers=1)
    result = once(build_shards, BENCH_CONFIG, tmp_path / "cache", workers=1)
    assert result.cache_hit


def test_parallel_speedup_and_determinism(tmp_path):
    serial, t_serial = _build(tmp_path, 1, "w1")
    parallel, t_parallel = _build(tmp_path, 4, "w4")

    # determinism: 4-worker shards byte-identical to serial shards
    assert len(plan_shards(BENCH_CONFIG)) == len(serial.shard_paths)
    for p_serial, p_parallel in zip(serial.shard_paths, parallel.shard_paths):
        assert p_serial.name == p_parallel.name
        assert p_serial.read_bytes() == p_parallel.read_bytes()
    m_serial = (serial.out_dir / "manifest.json").read_bytes()
    m_parallel = (parallel.out_dir / "manifest.json").read_bytes()
    assert m_serial == m_parallel

    speedup = t_serial / t_parallel
    print(
        f"\nserial {t_serial:.2f}s, 4 workers {t_parallel:.2f}s, "
        f"speedup {speedup:.2f}x on {CORES} cores"
    )
    # shared CI runners report 4 vCPUs but deliver far less parallel
    # throughput (SMT, noisy neighbours); the hard bar only applies where
    # 4 real cores are available, so CI sets REPRO_REQUIRE_SPEEDUP=0
    strict = os.environ.get("REPRO_REQUIRE_SPEEDUP", "1") != "0"
    if CORES >= 4 and strict:
        assert speedup >= 3.0, (
            f"expected >= 3x speedup with 4 workers on {CORES} cores, "
            f"got {speedup:.2f}x"
        )
    else:
        pytest.skip(
            f"speedup bar not enforced ({CORES} cores, strict={strict}): "
            f"measured {speedup:.2f}x"
        )
