"""Benchmark regenerating Table IV: the AIG-transformation ablation.

Shape target: training on unified AIGs is no worse than training on raw
7-type netlists, and the merged-suite pre-trained model is competitive —
the paper reports ~34% error reduction from the transformation and a
further ~51% from pre-training.
"""

from repro.experiments import table4


def test_table4_transformation(once):
    rows = once(table4.run, "smoke")
    print()
    print(table4.format_table(rows))

    assert {r.suite for r in rows} == {"EPFL", "IWLS"}
    for r in rows:
        for err in (r.without_transform, r.with_transform, r.pretrained):
            assert 0.0 <= err <= 0.6
        # transformed representation should not be dramatically worse;
        # at paper scale it wins by ~34%
        assert r.with_transform <= r.without_transform * 1.5
